"""Tests for the static analyzer (``repro.analysis`` / ``repro lint``).

Each rule gets (at least) one positive fixture that must produce a
finding and one clean fixture that must not; on top of that the
suppression layers (inline pragma, per-file config), the JSON report
round-trip, the CLI, and — the actual gate — a self-run asserting
``repro lint src`` is clean on this very tree.
"""

from __future__ import annotations

import ast
import importlib.util
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    LintConfig,
    LintReport,
    collect_files,
    run_lint,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    Project,
    match_path,
    parse_pragmas,
)
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.ledgertags import LedgerTagRule
from repro.analysis.rules.lockorder import LockOrderRule
from repro.analysis.rules.protocol import ProtocolDriftRule
from repro.analysis.rules.shm import ShmLifetimeRule
from repro.cli import main

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def ctx(path: str, source: str) -> FileContext:
    source = textwrap.dedent(source)
    return FileContext(path, source, ast.parse(source))


def project(*contexts: FileContext, config: LintConfig | None = None) -> Project:
    return Project(contexts, config or LintConfig())


def findings(rule, *contexts: FileContext, config: LintConfig | None = None):
    return list(rule.check(project(*contexts, config=config)))


# --------------------------------------------------------------------- #
# R001 determinism


class TestDeterminism:
    def test_legacy_np_random_flagged(self):
        bad = ctx("pkg/mod.py", """
            import numpy as np
            def f():
                np.random.seed(0)
                return np.random.rand(3)
        """)
        out = findings(DeterminismRule(), bad)
        assert len(out) == 2
        assert all(f.rule == "R001" for f in out)
        assert "seed" in out[0].message

    def test_seeded_default_rng_clean(self):
        good = ctx("pkg/mod.py", """
            import numpy as np
            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(3)
        """)
        assert findings(DeterminismRule(), good) == []

    def test_unseeded_default_rng_flagged_outside_entropy_module(self):
        bad = ctx("pkg/mod.py", """
            import numpy as np
            rng = np.random.default_rng()
        """)
        out = findings(DeterminismRule(), bad)
        assert len(out) == 1 and "unseeded" in out[0].message

    def test_unseeded_default_rng_allowed_in_entropy_module(self):
        good = ctx("src/repro/tensor/random.py", """
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert findings(DeterminismRule(), good) == []

    def test_wall_clock_flagged_only_in_scoped_paths(self):
        source = """
            import time
            def f():
                return time.time()
        """
        scoped = ctx("src/repro/backends/thing.py", source)
        unscoped = ctx("src/repro/bench/thing.py", source)
        assert len(findings(DeterminismRule(), scoped)) == 1
        assert findings(DeterminismRule(), unscoped) == []

    def test_perf_counter_is_fine(self):
        good = ctx("src/repro/backends/thing.py", """
            import time
            def f():
                return time.perf_counter()
        """)
        assert findings(DeterminismRule(), good) == []


# --------------------------------------------------------------------- #
# R002 shm-lifetime


class TestShmLifetime:
    def test_unpaired_create_flagged(self):
        bad = ctx("pkg/mod.py", """
            from multiprocessing.shared_memory import SharedMemory
            def alloc(n):
                shm = SharedMemory(create=True, size=n)
                return shm.name
        """)
        out = findings(ShmLifetimeRule(), bad)
        assert len(out) == 1 and out[0].rule == "R002"

    def test_finalize_in_scope_clean(self):
        good = ctx("pkg/mod.py", """
            import weakref
            from multiprocessing.shared_memory import SharedMemory
            def alloc(n, view):
                shm = SharedMemory(create=True, size=n)
                weakref.finalize(view, shm.unlink)
                return shm
        """)
        assert findings(ShmLifetimeRule(), good) == []

    def test_unlink_in_scope_clean(self):
        good = ctx("pkg/mod.py", """
            from multiprocessing.shared_memory import SharedMemory
            def probe(n):
                shm = SharedMemory(create=True, size=n)
                try:
                    return True
                finally:
                    shm.close()
                    shm.unlink()
        """)
        assert findings(ShmLifetimeRule(), good) == []

    def test_transfer_annotation_honored(self):
        good = ctx("pkg/mod.py", """
            from multiprocessing.shared_memory import SharedMemory
            def alloc(n):
                shm = SharedMemory(create=True, size=n)  # repro-lint: shm-transfer=caller unlinks
                return shm
        """)
        assert findings(ShmLifetimeRule(), good) == []

    def test_nested_function_is_its_own_scope(self):
        bad = ctx("pkg/mod.py", """
            from multiprocessing.shared_memory import SharedMemory
            def outer(n):
                def inner():
                    return SharedMemory(create=True, size=n)
                x = inner()
                x.unlink()  # outer's unlink must not excuse inner's create
        """)
        out = findings(ShmLifetimeRule(), bad)
        assert len(out) == 1 and "inner" in out[0].message


# --------------------------------------------------------------------- #
# R003 lock-order


LOCK_CYCLE = """
    import threading

    class A:
        def __init__(self, b: "B"):
            self._lock = threading.Lock()
            self.b = b
        def f(self):
            with self._lock:
                self.b.g()

    class B:
        def __init__(self, a: "A"):
            self._lock = threading.Lock()
            self.a = a
        def g(self):
            with self._lock:
                pass
        def h(self):
            with self._lock:
                self.a.f()
"""


class TestLockOrder:
    def test_cross_class_cycle_flagged(self):
        out = findings(LockOrderRule(), ctx("pkg/mod.py", LOCK_CYCLE))
        assert len(out) == 1
        assert "cycle" in out[0].message
        assert "A._lock" in out[0].message and "B._lock" in out[0].message

    def test_consistent_order_clean(self):
        good = ctx("pkg/mod.py", """
            import threading

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()
                def g(self):
                    with self._lock:
                        pass

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()
                def f(self):
                    with self._lock:
                        self.inner.g()
        """)
        assert findings(LockOrderRule(), good) == []

    def test_plain_lock_self_nesting_flagged(self):
        bad = ctx("pkg/mod.py", """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def f(self):
                    with self._lock:
                        with self._lock:
                            pass
        """)
        out = findings(LockOrderRule(), bad)
        assert len(out) == 1 and "self-deadlock" in out[0].message

    def test_rlock_self_nesting_allowed(self):
        good = ctx("pkg/mod.py", """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.RLock()
                def f(self):
                    with self._lock:
                        with self._lock:
                            pass
        """)
        assert findings(LockOrderRule(), good) == []

    def test_self_call_reacquire_flagged_for_plain_lock(self):
        bad = ctx("pkg/mod.py", """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def f(self):
                    with self._lock:
                        self.g()
                def g(self):
                    with self._lock:
                        pass
        """)
        out = findings(LockOrderRule(), bad)
        assert len(out) == 1 and "self-deadlock" in out[0].message

    def test_condition_aliases_its_wrapped_lock(self):
        bad = ctx("pkg/mod.py", """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                def f(self):
                    with self._lock:
                        with self._cond:
                            pass
        """)
        out = findings(LockOrderRule(), bad)
        assert len(out) == 1 and "self-deadlock" in out[0].message


# --------------------------------------------------------------------- #
# R004 protocol-drift


BASE_MODULE = """
    import abc

    class ExecutionBackend(abc.ABC):
        @abc.abstractmethod
        def ttm(self, handle, matrix, mode, *, tag="ttm"):
            ...

        @abc.abstractmethod
        def gather(self, handle):
            ...

        def helper(self):
            return None
"""


class TestProtocolDrift:
    def test_conforming_backend_clean(self):
        base = ctx("src/repro/backends/base.py", BASE_MODULE)
        impl = ctx("src/repro/backends/good.py", """
            from repro.backends.base import ExecutionBackend
            class GoodBackend(ExecutionBackend):
                def ttm(self, handle, matrix, mode, *, tag="ttm"):
                    return handle
                def gather(self, handle):
                    return handle
        """)
        assert findings(ProtocolDriftRule(), base, impl) == []

    def test_missing_method_flagged(self):
        base = ctx("src/repro/backends/base.py", BASE_MODULE)
        impl = ctx("src/repro/backends/bad.py", """
            from repro.backends.base import ExecutionBackend
            class BadBackend(ExecutionBackend):
                def ttm(self, handle, matrix, mode, *, tag="ttm"):
                    return handle
        """)
        out = findings(ProtocolDriftRule(), base, impl)
        assert len(out) == 1 and "gather" in out[0].message

    def test_default_drift_flagged(self):
        base = ctx("src/repro/backends/base.py", BASE_MODULE)
        impl = ctx("src/repro/backends/bad.py", """
            from repro.backends.base import ExecutionBackend
            class BadBackend(ExecutionBackend):
                def ttm(self, handle, matrix, mode, *, tag="TTM"):
                    return handle
                def gather(self, handle):
                    return handle
        """)
        out = findings(ProtocolDriftRule(), base, impl)
        assert len(out) == 1 and "default" in out[0].message

    def test_renamed_parameter_flagged(self):
        base = ctx("src/repro/backends/base.py", BASE_MODULE)
        impl = ctx("src/repro/backends/bad.py", """
            from repro.backends.base import ExecutionBackend
            class BadBackend(ExecutionBackend):
                def ttm(self, h, matrix, mode, *, tag="ttm"):
                    return h
                def gather(self, handle):
                    return handle
        """)
        out = findings(ProtocolDriftRule(), base, impl)
        assert len(out) == 1 and "positional" in out[0].message

    def test_non_backend_classes_ignored(self):
        base = ctx("src/repro/backends/base.py", BASE_MODULE)
        other = ctx("src/repro/other.py", """
            class Unrelated:
                def ttm(self, completely, different):
                    return None
        """)
        assert findings(ProtocolDriftRule(), base, other) == []


# --------------------------------------------------------------------- #
# R005 ledger-tag registry


SCHEDULE_MODULE = """
    def compile_tree(tree):
        steps = [
            Step(op="ttm", tag=f"ttm:n{tree.uid}"),
            Step(op="svd", tag=f"svd:m{tree.mode}"),
            Step(op="sketch", tag="sketch"),
        ]
        return steps
"""

TAG_BASE_MODULE = """
    import abc

    class ExecutionBackend(abc.ABC):
        @abc.abstractmethod
        def ttm(self, handle, matrix, mode, *, tag="ttm"):
            ...

        @abc.abstractmethod
        def fro_norm_sq(self, handle, *, tag="norm"):
            ...
"""


class TestLedgerTags:
    def base_files(self):
        return (
            ctx("src/repro/backends/schedule.py", SCHEDULE_MODULE),
            ctx("src/repro/backends/base.py", TAG_BASE_MODULE),
        )

    def test_known_tags_clean(self):
        schedule, base = self.base_files()
        user = ctx("src/repro/session.py", """
            def run(ledger, backend, handle, m):
                ledger.add_comm(op="gather", tag="hooi:it0:ttm:n3",
                                group_size=4, elements=10, seconds=0.1)
                backend.fro_norm_sq(handle, tag="norm:input")
                backend.ttm(handle, m, 0, tag=f"svd:m{0}")
        """)
        assert findings(LedgerTagRule(), schedule, base, user) == []

    def test_unknown_literal_tag_flagged(self):
        schedule, base = self.base_files()
        user = ctx("src/repro/session.py", """
            def run(ledger):
                ledger.add_compute(op="ttm", tag="mystery:tag",
                                   flops=1.0, seconds=0.1)
        """)
        out = findings(LedgerTagRule(), schedule, base, user)
        assert len(out) == 1
        assert out[0].rule == "R005" and "mystery:tag" in out[0].message

    def test_unknown_fstring_prefix_flagged(self):
        schedule, base = self.base_files()
        user = ctx("src/repro/session.py", """
            def run(backend, handle, m, mode):
                backend.ttm(handle, m, mode, tag=f"bogus:ttm{mode}")
        """)
        out = findings(LedgerTagRule(), schedule, base, user)
        assert len(out) == 1 and "bogus" in out[0].message

    def test_fully_dynamic_tag_ignored(self):
        schedule, base = self.base_files()
        user = ctx("src/repro/session.py", """
            def run(backend, handle, m, tag):
                backend.ttm(handle, m, 0, tag=f"{tag}:gram")
        """)
        assert findings(LedgerTagRule(), schedule, base, user) == []

    def test_extra_tags_config_extends_registry(self):
        schedule, base = self.base_files()
        user = ctx("src/repro/session.py", """
            def run(ledger):
                ledger.add_compute(op="svd", tag="legacy:svd0",
                                   flops=1.0, seconds=0.1)
        """)
        config = LintConfig.from_mapping(
            {"rules": {"R005": {"extra-tags": ["legacy:*"]}}}
        )
        assert findings(
            LedgerTagRule(), schedule, base, user, config=config
        ) == []


# --------------------------------------------------------------------- #
# R006 exception-hygiene


class TestExceptionHygiene:
    def test_silent_broad_except_flagged(self):
        bad = ctx("pkg/mod.py", """
            def f():
                try:
                    return 1
                except Exception:
                    return None
        """)
        out = findings(ExceptionHygieneRule(), bad)
        assert len(out) == 1 and out[0].rule == "R006"

    def test_bare_except_always_flagged(self):
        bad = ctx("pkg/mod.py", """
            import logging
            def f():
                try:
                    return 1
                except:
                    logging.getLogger("repro").exception("boom")
        """)
        out = findings(ExceptionHygieneRule(), bad)
        assert len(out) == 1 and "bare" in out[0].message

    def test_logged_broad_except_clean(self):
        good = ctx("pkg/mod.py", """
            import logging
            logger = logging.getLogger("repro.pkg")
            def f():
                try:
                    return 1
                except Exception:
                    logger.exception("boom")
                    return None
        """)
        assert findings(ExceptionHygieneRule(), good) == []

    def test_reraising_broad_except_clean(self):
        good = ctx("pkg/mod.py", """
            def f():
                try:
                    return 1
                except BaseException:
                    raise
        """)
        assert findings(ExceptionHygieneRule(), good) == []

    def test_narrowed_except_out_of_scope(self):
        good = ctx("pkg/mod.py", """
            def f():
                try:
                    return 1
                except (OSError, ValueError):
                    return None
        """)
        assert findings(ExceptionHygieneRule(), good) == []


# --------------------------------------------------------------------- #
# pragmas / config / driver


class TestSuppression:
    def test_parse_pragmas(self):
        pragmas = parse_pragmas(
            "x = 1  # repro-lint: disable=R001,R006\n"
            "y = 2\n"
            "z = 3  # repro-lint: disable\n"
        )
        assert set(pragmas) == {1, 3}
        assert pragmas[1][0].rules == frozenset({"R001", "R006"})
        assert pragmas[3][0].rules == frozenset()

    def test_match_path_suffix(self):
        assert match_path("src/repro/backends/base.py", "backends/*.py")
        assert match_path("src/repro/backends/base.py", "*/backends/*.py")
        assert not match_path("src/repro/core/meta.py", "backends/*.py")

    def test_inline_pragma_moves_finding_to_suppressed(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: disable=R001\n"
        )
        report = run_lint([str(target)], config=LintConfig())
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["R001"]

    def test_per_file_config_ignore(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        config = LintConfig.from_mapping(
            {"per-file-ignores": {"legacy.py": ["R001"]}}
        )
        report = run_lint([str(target)], config=config)
        assert report.ok and len(report.suppressed) == 1

    def test_global_disable(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        config = LintConfig.from_mapping({"disable": ["R001"]})
        report = run_lint([str(target)], config=config)
        assert report.ok and len(report.suppressed) == 1

    def test_malformed_config_raises(self):
        with pytest.raises(ValueError):
            LintConfig.from_mapping({"disable": "R001"})

    def test_exclude_skips_files(self, tmp_path):
        (tmp_path / "mod.py").write_text("import numpy as np\nnp.random.seed(0)\n")
        config = LintConfig.from_mapping({"exclude": ["mod.py"]})
        report = run_lint([str(tmp_path)], config=config)
        assert report.files == 0 and report.ok

    def test_parse_error_becomes_E000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        report = run_lint([str(target)], config=LintConfig())
        assert not report.ok
        assert [f.rule for f in report.findings] == ["E000"]

    def test_collect_files_walks_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        selected, excluded = collect_files([str(tmp_path)], LintConfig())
        assert [os.path.basename(p) for p in selected] == ["b.py", "a.py"]
        assert excluded == []


class TestReport:
    def test_json_round_trip(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        report = run_lint([str(target)], config=LintConfig())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["counts"] == {"R001": 1}
        back = LintReport.from_dict(data)
        assert back.findings == report.findings
        assert back.suppressed == report.suppressed
        assert back.files == report.files

    def test_finding_format(self):
        finding = Finding(
            path="a.py", line=3, rule="R001", message="boom"
        )
        assert finding.format() == "a.py:3: R001 [error] boom"

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule id"):
            run_lint([str(tmp_path)], config=LintConfig(), rules=["R999"])


# --------------------------------------------------------------------- #
# CLI


class TestLintCli:
    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "mod.py:2" in out

    def test_cli_json_schema(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n"
        )
        assert main(["lint", str(tmp_path), "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "version", "files", "ok", "counts", "findings", "suppressed",
        }
        assert data["findings"][0]["rule"] == "R001"

    def test_cli_rule_filter(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n"
        )
        assert main(["lint", str(tmp_path), "--rule", "R006"]) == 0
        assert main(["lint", str(tmp_path), "--rule", "R001"]) == 1
        capsys.readouterr()

    def test_cli_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--rule", "R999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# the gate itself


class TestSelfRun:
    def test_repo_src_is_lint_clean(self):
        report = run_lint([os.path.join(REPO, "src")])
        assert report.ok, "\n".join(f.format() for f in report.findings)
        assert report.files > 50

    def test_regression_seed_reintroduction_fails(self, tmp_path):
        """The acceptance check: np.random.seed in src-like code must
        flip the gate to exit 1."""
        bad = tmp_path / "regress.py"
        bad.write_text("import numpy as np\nnp.random.seed(1234)\n")
        report = run_lint(
            [os.path.join(REPO, "src"), str(bad)],
            config=LintConfig.load(os.path.join(REPO, "pyproject.toml")),
        )
        assert not report.ok
        assert any(f.rule == "R001" for f in report.findings)

    def test_regression_removed_finalizer_fails(self, tmp_path):
        bad = tmp_path / "leak.py"
        bad.write_text(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def alloc(n):\n"
            "    return SharedMemory(create=True, size=n)\n"
        )
        report = run_lint([str(bad)], config=LintConfig())
        assert [f.rule for f in report.findings] == ["R002"]

    def test_all_rules_have_unique_ids_and_docs(self):
        ids = [cls.id for cls in ALL_RULES]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for cls in ALL_RULES:
            assert cls.description and cls.name


# --------------------------------------------------------------------- #
# mypy (only when the checker is installed — CI's lint job installs it)


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed (the CI lint job provides it)",
)
def test_mypy_strict_on_analysis_package():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         os.path.join(REPO, "pyproject.toml")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr
