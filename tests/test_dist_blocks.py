"""Tests for block partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist.blocks import block_range, block_ranges, block_sizes


class TestBlockSizes:
    def test_even(self):
        assert block_sizes(8, 4) == [2, 2, 2, 2]

    def test_uneven_front_loaded(self):
        assert block_sizes(10, 4) == [3, 3, 2, 2]
        assert block_sizes(7, 3) == [3, 2, 2]

    def test_parts_exceed_length_rejected(self):
        with pytest.raises(ValueError, match="empty blocks"):
            block_sizes(3, 4)

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=64),
    )
    def test_invariants(self, length, parts):
        if parts > length:
            parts = length
        sizes = block_sizes(length, parts)
        assert sum(sizes) == length
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)


class TestBlockRanges:
    def test_contiguous_cover(self):
        ranges = block_ranges(10, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c and a < b

    def test_block_range_single(self):
        assert block_range(10, 4, 0) == (0, 3)
        assert block_range(10, 4, 3) == (8, 10)
        with pytest.raises(ValueError):
            block_range(10, 4, 4)
