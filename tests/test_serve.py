"""The serving subsystem: requests, admission, routing, server, protocol.

The server tests drive a real in-process :class:`TuckerServer` (worker
threads, private sessions) on small tensors; blocking scenarios pin the
shared admission budget from the test thread so queue/deadline/cancel
states are reached deterministically instead of by racing timers.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionError,
    AffinityRouter,
    ServeRequest,
    ServerStats,
    Ticket,
    TuckerServer,
    parse_request,
    plan_key,
    serve_lines,
)
from repro.session import TuckerSession


def _random(dims, seed=0):
    from repro.tensor.random import random_tensor

    return random_tensor(dims, seed=seed)


# --------------------------------------------------------------------- #
# requests and parsing
# --------------------------------------------------------------------- #


class TestServeRequest:
    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ServeRequest(core=(2, 2))
        with pytest.raises(ValueError, match="exactly one"):
            ServeRequest(
                core=(2, 2), array=np.zeros((4, 4)), dims=(4, 4)
            )

    def test_random_spec_materializes_deterministically(self):
        req = ServeRequest(core=(2, 2, 2), dims=(5, 4, 3), seed=7)
        a = req.materialize()
        b = req.materialize()
        assert a.shape == (5, 4, 3)
        np.testing.assert_array_equal(a, b)

    def test_path_source_header_peek(self, tmp_path):
        path = str(tmp_path / "x.npy")
        np.save(path, np.zeros((6, 5, 4), dtype=np.float32))
        req = ServeRequest(core=(2, 2, 2), path=path)
        assert req.input_shape() == (6, 5, 4)
        assert req.input_dtype_name() == "float32"
        assert req.nbytes() == 6 * 5 * 4 * 4

    def test_non_float32_runs_float64(self):
        req = ServeRequest(
            core=(2, 2), array=np.zeros((3, 3), dtype=np.int32)
        )
        assert req.input_dtype_name() == "float64"

    def test_bad_method_and_deadline_rejected(self):
        with pytest.raises(ValueError, match="method"):
            ServeRequest(core=(2, 2), dims=(4, 4), method="hooi!")
        with pytest.raises(ValueError, match="deadline"):
            ServeRequest(core=(2, 2), dims=(4, 4), deadline=0.0)

    def test_plan_key_matches_session_grouping(self):
        a = ServeRequest(core=(2, 2, 2), dims=(6, 5, 4))
        b = ServeRequest(core=(2, 2, 2), dims=(6, 5, 4), seed=99)
        c = ServeRequest(core=(3, 2, 2), dims=(6, 5, 4))
        assert plan_key(a) == plan_key(b)
        assert plan_key(a) != plan_key(c)
        assert plan_key(a) == ((6, 5, 4), (2, 2, 2), "float64")

    def test_plan_key_validates_core(self):
        req = ServeRequest(core=(9, 9, 9), dims=(4, 4, 4))
        with pytest.raises(ValueError):
            plan_key(req)


class TestParseRequest:
    def test_minimal_random_payload(self):
        req = parse_request(
            {"core": [2, 2], "random": {"dims": [5, 5], "seed": 3}},
            index=4,
        )
        assert req.dims == (5, 5)
        assert req.seed == 3
        assert req.id == "req4"
        assert req.method == "run"

    def test_inline_data(self):
        req = parse_request(
            {"core": [1, 1], "data": [[1.0, 2.0], [3.0, 4.0]], "id": "d"}
        )
        np.testing.assert_array_equal(
            req.array, np.array([[1.0, 2.0], [3.0, 4.0]])
        )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            parse_request({"core": [2, 2], "dims": [4, 4]})

    def test_core_required(self):
        with pytest.raises(ValueError, match="core"):
            parse_request({"random": {"dims": [4, 4]}})

    def test_bad_random_spec(self):
        with pytest.raises(ValueError, match="random"):
            parse_request({"core": [2, 2], "random": [4, 4]})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            parse_request([1, 2, 3])


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #


class TestAdmission:
    def test_charge_is_capped_at_budget(self):
        ctl = AdmissionController(1000)
        assert ctl.charge_for(400) == 400
        assert ctl.charge_for(5000) == 1000  # oversized runs alone, spilled

    def test_unbudgeted_never_blocks(self):
        ctl = AdmissionController(None)
        charge = ctl.acquire(10**12, timeout=0.0)
        assert charge == 10**12
        assert ctl.gauge.current == 10**12
        ctl.release(charge)
        assert ctl.gauge.current == 0

    def test_budget_serializes_oversubscription(self):
        ctl = AdmissionController(1000)
        first = ctl.acquire(800)
        acquired = threading.Event()
        charges = []

        def second():
            charges.append(ctl.acquire(800, timeout=5.0))
            acquired.set()

        t = threading.Thread(target=second, daemon=True)
        t.start()
        assert not acquired.wait(0.05)  # must be blocked, 1600 > 1000
        ctl.release(first)
        assert acquired.wait(5.0)
        t.join(5.0)
        assert charges == [800]
        ctl.release(800)
        assert ctl.waits == 1

    def test_timeout_raises_typed_error(self):
        ctl = AdmissionController(1000)
        ctl.acquire(1000)
        with pytest.raises(AdmissionError) as exc:
            ctl.acquire(500, timeout=0.01)
        assert exc.value.reason == "budget_timeout"
        ctl.release(1000)

    def test_string_budget_and_validation(self):
        assert AdmissionController("1K").budget == 1024
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_snapshot_shape(self):
        ctl = AdmissionController(2048)
        ctl.acquire(100)
        snap = ctl.snapshot()
        assert snap["budget"] == 2048
        assert snap["charged"] == 100
        assert snap["charged_peak"] == 100
        assert snap["waits"] == 0


# --------------------------------------------------------------------- #
# affinity routing
# --------------------------------------------------------------------- #


class TestAffinityRouter:
    def test_sticky_owner_hits(self):
        router = AffinityRouter(3)
        first, hit = router.route(("k",), [0, 0, 0])
        assert not hit
        again, hit = router.route(("k",), [2, 2, 2])
        assert again == first
        assert hit

    def test_spillover_moves_to_coldest(self):
        router = AffinityRouter(2, spill_threshold=2)
        owner, _ = router.route(("k",), [0, 0])
        loads = [0, 0]
        loads[owner] = 5  # owner 5 items behind the other queue
        moved, hit = router.route(("k",), loads)
        assert moved != owner
        assert not hit
        # ...and the key's new home is sticky from here on.
        again, hit = router.route(("k",), [1, 1])
        assert again == moved
        assert hit

    def test_within_threshold_stays_home(self):
        router = AffinityRouter(2, spill_threshold=4)
        owner, _ = router.route(("k",), [0, 0])
        loads = [0, 0]
        loads[owner] = 4  # exactly at threshold: stay
        again, hit = router.route(("k",), loads)
        assert again == owner
        assert hit

    def test_distinct_keys_spread_to_coldest(self):
        router = AffinityRouter(2)
        a, _ = router.route(("a",), [0, 0])
        b, _ = router.route(("b",), [1 if i == a else 0 for i in range(2)])
        assert b != a

    def test_hit_rate_and_snapshot(self):
        router = AffinityRouter(1)
        assert router.hit_rate() == 0.0
        router.route(("k",), [0])
        router.route(("k",), [0])
        snap = router.snapshot()
        assert snap == {"keys": 1, "hits": 1, "misses": 1, "hit_rate": 0.5}

    def test_load_count_validated(self):
        with pytest.raises(ValueError):
            AffinityRouter(2).route(("k",), [0])
        with pytest.raises(ValueError):
            AffinityRouter(0)


# --------------------------------------------------------------------- #
# tickets
# --------------------------------------------------------------------- #


class TestTicket:
    def _ticket(self):
        return Ticket(
            ServeRequest(core=(2, 2), dims=(4, 4), id="t"), 0, False
        )

    def test_cancel_publishes_result_immediately(self):
        ticket = self._ticket()
        assert ticket.cancel()
        assert ticket.done()
        res = ticket.result(timeout=0)
        assert not res.ok
        assert res.error_kind == "RequestCancelled"
        assert ticket.state == "cancelled"

    def test_cancel_loses_to_start(self):
        ticket = self._ticket()
        assert ticket._start()
        assert not ticket.cancel()
        assert ticket.state == "running"

    def test_start_loses_to_cancel(self):
        ticket = self._ticket()
        assert ticket.cancel()
        assert not ticket._start()

    def test_result_timeout(self):
        with pytest.raises(TimeoutError):
            self._ticket().result(timeout=0.01)

    def test_deadline_remaining(self):
        assert self._ticket().deadline_remaining() is None
        bounded = Ticket(
            ServeRequest(core=(2, 2), dims=(4, 4), deadline=60.0), 0, False
        )
        remaining = bounded.deadline_remaining()
        assert 0 < remaining <= 60.0


# --------------------------------------------------------------------- #
# the server
# --------------------------------------------------------------------- #


class TestServer:
    def test_results_match_sequential_session(self):
        shapes = [(10, 8, 6), (10, 8, 6), (7, 7, 7)]
        tensors = [_random(s, seed=i) for i, s in enumerate(shapes)]
        with TuckerSession(backend="sequential") as session:
            expected = [
                session.run(t, (3, 3, 2), max_iters=2) for t in tensors
            ]
        with TuckerServer(workers=2, backend="sequential") as server:
            tickets = [
                server.submit(ServeRequest(
                    array=t, core=(3, 3, 2), id=f"r{i}", max_iters=2
                ))
                for i, t in enumerate(tensors)
            ]
            results = [t.result(timeout=60) for t in tickets]
        for res, ref in zip(results, expected):
            assert res.ok, res.error
            np.testing.assert_allclose(
                res.value.decomposition.core,
                ref.decomposition.core,
                atol=1e-10,
            )

    def test_affinity_routes_equal_keys_to_one_worker(self):
        with TuckerServer(workers=2, backend="sequential") as server:
            tickets = [
                server.submit(ServeRequest(
                    dims=(8, 8, 8), seed=i, core=(2, 2, 2),
                    id=f"r{i}", max_iters=1,
                ))
                for i in range(6)
            ]
            results = [t.result(timeout=60) for t in tickets]
            snap = server.stats_snapshot()
        assert all(r.ok for r in results)
        assert snap["affinity"]["hit_rate"] > 0
        # Affinity means later requests find the compiled plan in the
        # owning worker's session cache.
        assert any(r.from_cache for r in results)

    def test_dict_submission_and_stats(self):
        with TuckerServer(workers=1, backend="sequential") as server:
            ticket = server.submit({
                "core": [2, 2, 2],
                "random": {"dims": [6, 6, 6], "seed": 1},
                "id": "via-dict",
            })
            res = ticket.result(timeout=60)
            snap = server.stats_snapshot()
        assert res.ok
        assert res.id == "via-dict"
        assert snap["submitted"] == 1.0
        assert snap["completed"] == 1.0
        assert snap["items_per_second"] >= 0.0
        assert snap["latency_p99"] >= snap["latency_p50"] >= 0.0

    def test_queue_full_sheds_with_typed_error(self):
        budget = 8 * 8 * 8 * 8  # exactly one (8,8,8) float64 request
        server = TuckerServer(
            workers=1, backend="sequential",
            memory_budget=budget, max_queue=2,
        )
        try:
            # Pin the whole budget so the worker blocks in admission and
            # the queue backs up deterministically.
            hold = server.admission.acquire(budget)
            req = {"core": [2, 2, 2], "random": {"dims": [8, 8, 8]}}
            t1 = server.submit(dict(req, id="a"))
            t2 = server.submit(dict(req, id="b"))
            with pytest.raises(AdmissionError) as exc:
                server.submit(dict(req, id="overflow"))
            assert exc.value.reason == "queue_full"
            server.admission.release(hold)
            assert t1.result(timeout=60).ok
            assert t2.result(timeout=60).ok
            snap = server.stats_snapshot()
            assert snap["shed"] == 1.0
        finally:
            server.close()

    def test_draining_sheds_new_submissions(self):
        server = TuckerServer(workers=1, backend="sequential")
        drained = server.drain()
        assert drained
        with pytest.raises(AdmissionError) as exc:
            server.submit({
                "core": [2, 2], "random": {"dims": [4, 4]},
            })
        assert exc.value.reason == "draining"
        assert server.stats_snapshot()["shed"] == 1.0

    def test_deadline_missed_while_queued(self):
        budget = 8 * 8 * 8 * 8
        server = TuckerServer(
            workers=1, backend="sequential", memory_budget=budget,
        )
        try:
            hold = server.admission.acquire(budget)
            req = {"core": [2, 2, 2], "random": {"dims": [8, 8, 8]}}
            # The first request spends its whole deadline blocked on the
            # pinned budget; by the time the worker reaches the second,
            # its (shorter) deadline is long gone -> the queued path.
            first = server.submit(dict(req, id="first", deadline=0.3))
            doomed = server.submit(dict(req, id="doomed", deadline=0.05))
            res1 = first.result(timeout=60)
            res2 = doomed.result(timeout=60)
            server.admission.release(hold)
            assert not res1.ok
            assert res1.error_kind == "DeadlineExceeded"
            assert not res2.ok
            assert res2.error_kind == "DeadlineExceeded"
            assert "queued" in res2.error
            snap = server.stats_snapshot()
            assert snap["deadline_missed"] == 2.0
            assert snap["failed"] == 2.0
        finally:
            server.close()

    def test_default_deadline_applies_to_bare_requests(self):
        server = TuckerServer(
            workers=1, backend="sequential", deadline=123.0,
        )
        try:
            ticket = server.submit({
                "core": [2, 2], "random": {"dims": [4, 4]},
            })
            assert ticket.request.deadline == 123.0
            explicit = server.submit({
                "core": [2, 2], "random": {"dims": [4, 4]},
                "deadline": 5.0,
            })
            assert explicit.request.deadline == 5.0
        finally:
            server.close()
        with pytest.raises(ValueError):
            TuckerServer(workers=1, deadline=-1.0)

    def test_cancel_queued_request(self):
        budget = 8 * 8 * 8 * 8
        server = TuckerServer(
            workers=1, backend="sequential", memory_budget=budget,
        )
        try:
            hold = server.admission.acquire(budget)
            req = {"core": [2, 2, 2], "random": {"dims": [8, 8, 8]}}
            running = server.submit(dict(req, id="runs"))
            queued = server.submit(dict(req, id="cancelled"))
            assert queued.cancel()
            res = queued.result(timeout=1)
            assert not res.ok
            assert res.error_kind == "RequestCancelled"
            server.admission.release(hold)
            assert running.result(timeout=60).ok
            # drain() below flushes the dead ticket through the worker,
            # which records the cancellation.
            server.close()
            assert server.stats_snapshot()["cancelled"] == 1.0
        finally:
            server.close()

    def test_missing_path_rejected_at_submission(self):
        with TuckerServer(workers=1, backend="sequential") as server:
            with pytest.raises(FileNotFoundError):
                server.submit(ServeRequest(
                    core=(2, 2, 2), path="/nonexistent/input.npy", id="bad",
                ))

    def test_execution_failure_does_not_kill_worker(self, tmp_path):
        path = tmp_path / "vanishes.npy"
        np.save(path, _random((6, 6, 6)))
        budget = 6 * 6 * 6 * 8
        server = TuckerServer(
            workers=1, backend="sequential", memory_budget=budget,
        )
        try:
            # Valid at submission; gone by the time the worker reaches
            # it. The first request holds the worker at the pinned
            # budget so the path request is still queued when unlinked.
            hold = server.admission.acquire(budget)
            blocker = server.submit(ServeRequest(
                core=(2, 2, 2), dims=(6, 6, 6), id="blocker",
            ))
            bad = server.submit(ServeRequest(
                core=(2, 2, 2), path=str(path), id="bad",
            ))
            path.unlink()
            server.admission.release(hold)
            assert blocker.result(timeout=60).ok
            res = bad.result(timeout=60)
            assert not res.ok
            assert res.error_kind == "FileNotFoundError"
            # The worker survives and serves the next request.
            good = server.submit({
                "core": [2, 2], "random": {"dims": [5, 5]}, "id": "good",
            })
            assert good.result(timeout=60).ok
            assert server.stats_snapshot()["failed"] == 1.0
        finally:
            server.close()

    def test_save_writes_npz(self, tmp_path):
        out = str(tmp_path / "result.npz")
        with TuckerServer(workers=1, backend="sequential") as server:
            ticket = server.submit(ServeRequest(
                dims=(6, 5, 4), core=(2, 2, 2), id="s",
                max_iters=1, save=out,
            ))
            res = ticket.result(timeout=60)
        assert res.ok and res.saved == out
        with np.load(out) as payload:
            dec = res.value.decomposition
            np.testing.assert_array_equal(payload["core"], dec.core)
            for m, factor in enumerate(dec.factors):
                np.testing.assert_array_equal(
                    payload[f"factor{m}"], factor
                )

    def test_drain_is_clean_and_idempotent(self):
        server = TuckerServer(workers=2, backend="sequential")
        tickets = [
            server.submit({
                "core": [2, 2, 2], "random": {"dims": [7, 6, 5], "seed": i},
                "id": f"r{i}",
            })
            for i in range(4)
        ]
        assert server.drain(timeout=60)
        assert all(t.result(timeout=0).ok for t in tickets)
        assert all(not w.thread.is_alive() for w in server.workers)
        assert server.pending == 0
        assert server.drain(timeout=60)  # idempotent
        snap = server.stats_snapshot()
        assert snap["draining"] is True
        assert snap["completed"] == 4.0

    def test_oversized_request_runs_spilled_not_shed(self):
        # 4KB budget << the 8000-byte 10x10x10 float64 input: admission
        # charges min(nbytes, budget) and the session runs it out of core.
        with TuckerServer(
            workers=1, backend="sequential", memory_budget=4096,
        ) as server:
            ticket = server.submit({
                "core": [2, 2, 2], "random": {"dims": [10, 10, 10]},
                "id": "big",
            })
            res = ticket.result(timeout=60)
        assert res.ok, res.error
        assert res.storage == "mmap"

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            TuckerServer(workers=0)
        with pytest.raises(ValueError):
            TuckerServer(workers=1, max_queue=0)


# --------------------------------------------------------------------- #
# the ndjson protocol
# --------------------------------------------------------------------- #


def _run_protocol(lines, **server_kw):
    """Feed ``lines`` (dicts/strings) through serve_lines; return outputs."""
    server_kw.setdefault("workers", 2)
    server_kw.setdefault("backend", "sequential")
    inputs = [
        line if isinstance(line, str) else json.dumps(line)
        for line in lines
    ]
    it = iter(inputs)
    out: list[str] = []
    server = TuckerServer(**server_kw)
    stats = serve_lines(server, lambda: next(it, ""), out.append)
    return [json.loads(line) for line in out], stats


class TestProtocol:
    def test_responses_in_submission_order(self):
        reqs = [
            {"core": [2, 2, 2], "random": {"dims": [8, 7, 6], "seed": i},
             "id": f"r{i}"}
            for i in range(5)
        ]
        responses, stats = _run_protocol(reqs)
        body, final = responses[:-1], responses[-1]
        assert [r["id"] for r in body] == [f"r{i}" for i in range(5)]
        assert all(r["ok"] for r in body)
        assert final["op"] == "drain" and final["ok"]
        assert stats["completed"] == 5.0

    def test_instant_rejection_does_not_overtake(self):
        # A malformed line right after a real request must still answer
        # *after* it — FIFO framing is the protocol's contract.
        reqs = [
            {"core": [2, 2, 2], "random": {"dims": [8, 7, 6]}, "id": "work"},
            {"core": [2, 2], "mystery_field": 1, "id": "broken"},
        ]
        responses, _ = _run_protocol(reqs)
        assert responses[0]["id"] == "work" and responses[0]["ok"]
        assert responses[1]["ok"] is False
        assert responses[1]["error_kind"] == "ValueError"

    def test_stats_and_drain_ops(self):
        responses, _ = _run_protocol([
            {"op": "stats"},
            {"op": "drain"},
            {"core": [2, 2], "random": {"dims": [4, 4]}, "id": "late"},
        ])
        assert responses[0]["op"] == "stats"
        assert responses[1]["op"] == "drain"
        # Nothing after the drain line: the late request was never read.
        assert len(responses) == 2

    def test_bad_json_line_answered_not_fatal(self):
        responses, stats = _run_protocol([
            "{not json",
            {"core": [2, 2], "random": {"dims": [4, 4]}, "id": "fine"},
        ])
        assert responses[0]["ok"] is False
        assert responses[0]["error_kind"] == "JSONDecodeError"
        assert responses[1]["id"] == "fine" and responses[1]["ok"]
        assert stats["completed"] == 1.0

    def test_eof_means_drain(self):
        responses, stats = _run_protocol([
            {"core": [2, 2], "random": {"dims": [4, 4]}, "id": "only"},
        ])
        assert responses[-1]["op"] == "drain" and responses[-1]["ok"]
        assert stats["completed"] == 1.0

    def test_blank_lines_skipped(self):
        # Whitespace-only lines (an empty string is EOF) are ignored.
        responses, _ = _run_protocol([
            " ", "   ",
            {"core": [2, 2], "random": {"dims": [4, 4]}, "id": "x"},
        ])
        assert responses[0]["id"] == "x"


# --------------------------------------------------------------------- #
# server stats
# --------------------------------------------------------------------- #


class TestServerStats:
    def test_empty_snapshot_is_all_zero(self):
        snap = ServerStats().snapshot()
        assert snap["submitted"] == 0.0
        assert snap["completed"] == 0.0
        assert snap["items_per_second"] == 0.0
        assert snap["latency_p50"] == 0.0

    def test_percentiles_ordered(self):
        stats = ServerStats()
        for ms in range(1, 101):
            stats.completed(seconds=ms / 1000.0, wall_seconds=ms / 1000.0)
        snap = stats.snapshot()
        assert snap["completed"] == 100.0
        assert (
            0 < snap["latency_p50"] <= snap["latency_p90"]
            <= snap["latency_p99"]
        )

    def test_shed_and_failed_reasons_counted(self):
        stats = ServerStats()
        stats.shed("queue_full")
        stats.shed("draining")
        stats.failed("DeadlineExceeded")
        counters = stats.registry.snapshot()["counters"]
        assert counters["serve_shed"] == 2.0
        assert counters["serve_shed:queue_full"] == 1.0
        assert counters["serve_failed:DeadlineExceeded"] == 1.0
