"""Spill/stress layer: budgets hold and crashes reclaim.

Two guarantees the storage subsystem exists for:

* **the budget guard** — a tensor *larger than* ``memory_budget``
  completes under ``storage="auto"`` (which must select ``mmap``), with
  the measured peak of resident block bytes
  (:func:`repro.storage.resident_gauge`) bounded by the budget, numerics
  matching the fully resident run to 1e-10, and an empty spill
  directory afterward — the acceptance criterion of the out-of-core PR;
* **crash reclamation** — a procpool worker dying mid-kernel on a
  spilled handle must not leak spill files: the orphaned output block is
  deleted, the pool is rebuilt, and the next kernel succeeds.
"""

import gc
import os
import sys

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

import repro.backends.procpool as procpool_mod
from repro.backends.procpool import ProcessPoolBackend
from repro.session import TuckerSession
from repro.storage import MmapStore, resident_gauge
from repro.tensor.random import low_rank_tensor
from repro.tensor.ttm import ttm

DIMS, CORE, PROCS = (48, 40, 32), (6, 5, 4), 3

#: well below the tensor's 48*40*32*8 = 491520 bytes
BUDGET = 128 * 1024


@pytest.fixture(scope="module")
def big_tensor():
    return low_rank_tensor(DIMS, CORE, noise=0.1, seed=7)


@pytest.fixture(scope="module")
def reference(big_tensor):
    return TuckerSession(backend="sequential", storage="memory").run(
        big_tensor, CORE, planner="optimal", n_procs=PROCS, max_iters=2,
        tol=-np.inf,
    )


class TestBudgetGuard:
    """storage="auto" + a sub-tensor budget: spill, bound, agree, clean."""

    @pytest.mark.parametrize("name", ["sequential", "threaded", "procpool"])
    def test_over_budget_run_is_bounded_and_exact(
        self, name, big_tensor, reference, tmp_path
    ):
        assert big_tensor.nbytes > BUDGET  # the premise of the guard
        gauge = resident_gauge()
        gauge.reset()
        session = TuckerSession(
            backend=name,
            n_procs=PROCS,
            storage="auto",
            memory_budget=BUDGET,
            spill_dir=str(tmp_path),
        )
        try:
            res = session.run(
                big_tensor, CORE, planner="optimal", n_procs=PROCS,
                max_iters=2, tol=-np.inf,
            )
        finally:
            session.close()
        # auto selected the spill path...
        assert res.storage == "mmap"
        assert "over the" in res.storage_reason
        # ...the resident-block gauge stayed within the budget...
        assert 0 < gauge.peak <= BUDGET, (name, gauge.peak)
        assert gauge.current == 0
        # ...numerics match the fully resident reference to 1e-10...
        np.testing.assert_allclose(res.errors, reference.errors, atol=1e-10)
        np.testing.assert_allclose(
            res.decomposition.core, reference.decomposition.core, atol=1e-10
        )
        # ...and no spill file survived the run.
        assert list(tmp_path.iterdir()) == [], name

    def test_simcluster_over_budget_agrees_and_cleans(
        self, big_tensor, reference, tmp_path
    ):
        """The virtual cluster spills its per-rank bricks too."""
        session = TuckerSession(
            backend="simcluster",
            n_procs=PROCS,
            storage="auto",
            memory_budget=BUDGET,
            spill_dir=str(tmp_path),
        )
        res = session.run(
            big_tensor, CORE, planner="optimal", n_procs=PROCS,
            max_iters=2, tol=-np.inf,
        )
        assert res.storage == "mmap"
        np.testing.assert_allclose(res.errors, reference.errors, atol=1e-10)
        assert list(tmp_path.iterdir()) == []

    def test_under_budget_stays_resident(self, big_tensor, tmp_path):
        session = TuckerSession(
            backend="sequential",
            storage="auto",
            memory_budget=big_tensor.nbytes + 1,
            spill_dir=str(tmp_path),
        )
        res = session.run(
            big_tensor, CORE, planner="optimal", n_procs=PROCS, max_iters=1
        )
        assert res.storage == "memory"
        assert list(tmp_path.iterdir()) == []

    def test_spilled_run_cuts_multiple_blocks(self, big_tensor, tmp_path):
        """The budget genuinely forces multi-block kernels, not one slab."""
        from repro.backends.blockpar import (
            OC_LEASE_FACTOR,
            oc_block_slices,
        )

        per_block = max(1, BUDGET // OC_LEASE_FACTOR // PROCS)
        slices = oc_block_slices(
            DIMS, 0, big_tensor.dtype.itemsize, per_block, PROCS
        )
        assert len(slices) > PROCS

    def test_lazy_npy_input_never_fully_resident(self, tmp_path):
        """A .npy opened lazily spills zero copy bytes (external wrap)."""
        path = tmp_path / "big.npy"
        t = low_rank_tensor((32, 28, 24), (4, 4, 4), noise=0.1, seed=3)
        np.save(path, t)
        mapped = np.load(path, mmap_mode="r")
        gauge = resident_gauge()
        gauge.reset()
        session = TuckerSession(
            backend="threaded",
            n_procs=PROCS,
            storage="mmap",
            memory_budget=BUDGET,
            spill_dir=str(tmp_path / "spill"),
        )
        try:
            res = session.run(
                mapped, (4, 4, 4), planner="optimal", n_procs=PROCS,
                max_iters=1,
            )
        finally:
            session.close()
        ref = TuckerSession(backend="sequential").run(
            t, (4, 4, 4), planner="optimal", n_procs=PROCS, max_iters=1
        )
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=1e-10
        )
        # the input itself was mapped in place: every gauge lease is a
        # kernel block, all within budget; the source was never copied
        assert gauge.peak <= BUDGET


# --------------------------------------------------------------------- #
# crash injection: spilled kernels on a dying pool
# --------------------------------------------------------------------- #

pytest_crash = pytest.mark.skipif(
    sys.platform != "linux" or not os.path.isdir("/dev/shm"),
    reason="crash injection relies on Linux fork workers",
)


def _exit_hard(*args, **kwargs):  # pragma: no cover - runs in a worker
    os._exit(13)


@pytest_crash
class TestProcpoolSpillCrash:
    def test_worker_death_mid_kernel_reclaims_spill_files(
        self, tmp_path, monkeypatch
    ):
        tensor = np.random.default_rng(0).standard_normal((24, 20, 16))
        matrix = np.random.default_rng(1).standard_normal((6, 24))
        backend = ProcessPoolBackend(n_workers=2)
        store = MmapStore(root=str(tmp_path), max_block_bytes=8192)
        try:
            handle = backend.distribute(tensor, (), store=store)
            input_keys = set(store.keys())
            assert input_keys  # the spilled input block
            monkeypatch.setattr(
                procpool_mod, "_ttm_block_file", _exit_hard
            )
            with pytest.raises(BrokenProcessPool):
                backend.ttm(handle, matrix, 0)
            gc.collect()
            # the orphaned *output* block was reclaimed; the input stays
            assert set(store.keys()) == input_keys
            # the broken pool was dropped...
            assert backend._pool is None
            # ...and with the real task function back, the next kernel
            # transparently rebuilds the pool and is numerically right
            monkeypatch.undo()
            out = backend.ttm(handle, matrix, 0)
            np.testing.assert_allclose(
                np.asarray(backend.gather(out)),
                ttm(tensor, matrix, 0),
                atol=1e-12,
            )
        finally:
            backend.close()
            store.close()
        # the whole spill directory is gone with the store
        assert list(tmp_path.iterdir()) == []

    def test_session_run_crash_leaves_spill_root_clean(
        self, tmp_path, monkeypatch
    ):
        """End to end: a worker dying mid-run leaks no spill files."""
        tensor = np.random.default_rng(2).standard_normal((24, 20, 16))
        session = TuckerSession(
            backend="procpool",
            n_procs=2,
            storage="mmap",
            memory_budget=BUDGET,
            spill_dir=str(tmp_path),
        )
        monkeypatch.setattr(procpool_mod, "_gram_block_file", _exit_hard)
        try:
            with pytest.raises(BrokenProcessPool):
                session.run(
                    tensor, (4, 4, 3), planner="optimal", n_procs=2,
                    max_iters=1,
                )
        finally:
            session.close()
        gc.collect()
        assert list(tmp_path.iterdir()) == []
        # the session recovered: the same run now succeeds
        monkeypatch.undo()
        res = session.run(
            tensor, (4, 4, 3), planner="optimal", n_procs=2, max_iters=1
        )
        assert res.storage == "mmap"
        assert list(tmp_path.iterdir()) == []
