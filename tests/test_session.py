"""Tests for the session API: CompiledPlan, the plan cache, and the shims."""

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.core.planner import Plan, Planner
from repro.hooi.hooi import hooi_distributed, hooi_sequential
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.session import CompiledPlan, TuckerSession, compile_plan
from repro.tensor.random import low_rank_tensor
from repro.hooi.api import tucker


@pytest.fixture
def tensor():
    return low_rank_tensor((14, 12, 10), (4, 3, 3), noise=0.08, seed=0)


class TestCompile:
    def test_compile_produces_schedule(self):
        meta = TensorMeta(dims=(12, 10, 8), core=(4, 3, 3))
        session = TuckerSession()
        cp = session.compile(meta, n_procs=4, planner="optimal")
        assert isinstance(cp, CompiledPlan)
        assert cp.n_procs == 4
        assert cp.meta == meta
        # one svd step per mode, at least one ttm step per mode chain
        svd_modes = sorted(s.mode for s in cp.tree_steps if s.op == "svd")
        assert svd_modes == [0, 1, 2]
        assert sum(1 for s in cp.core_steps if s.op == "ttm") == 3

    def test_gram_workspace_preallocated_and_reused(self):
        meta = TensorMeta(dims=(12, 10, 8), core=(4, 3, 3))
        cp = TuckerSession().compile(meta, n_procs=2, planner="optimal")
        ws = cp.gram_workspace()
        assert ws[0].shape == (12, 12) and ws[0].dtype == np.float64
        assert cp.gram_workspace() is ws  # built once, reused

    def test_portfolio_is_default_planner(self, tensor):
        session = TuckerSession()
        res = session.run(tensor, (4, 3, 3), n_procs=4, max_iters=2)
        assert res.plan.tree_kind in (
            "optimal", "balanced", "chain-k", "chain-h"
        )


class TestPlanCache:
    def test_repeated_run_hits_cache(self, tensor):
        session = TuckerSession()
        r1 = session.run(tensor, (4, 3, 3), n_procs=4, max_iters=1)
        assert r1.from_cache is False
        r2 = session.run(tensor + 0.5, (4, 3, 3), n_procs=4, max_iters=1)
        assert r2.from_cache is True
        info = session.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1
        assert r1.plan is r2.plan  # the very same compiled Plan object

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_procs": 8},
            {"planner": "optimal"},
            {"dtype": np.float32},
        ],
    )
    def test_key_components_cause_misses(self, tensor, kwargs):
        session = TuckerSession()
        session.run(tensor, (4, 3, 3), n_procs=4, max_iters=1)
        session.run(tensor, (4, 3, 3), max_iters=1, **{"n_procs": 4, **kwargs})
        info = session.cache_info()
        assert info["misses"] == 2 and info["hits"] == 0

    def test_different_core_misses(self, tensor):
        session = TuckerSession()
        session.run(tensor, (4, 3, 3), n_procs=4, max_iters=1)
        session.run(tensor, (3, 3, 3), n_procs=4, max_iters=1)
        assert session.cache_info()["misses"] == 2

    def test_lru_eviction(self):
        session = TuckerSession(cache_size=2)
        metas = [
            TensorMeta(dims=(10, 8, 6), core=(k, 2, 2)) for k in (2, 3, 4)
        ]
        for m in metas:
            session.compile(m, n_procs=2, planner="optimal")
        assert session.cache_info()["size"] == 2
        # the first meta was evicted: compiling it again is a miss
        session.compile(metas[0], n_procs=2, planner="optimal")
        assert session.cache_info()["misses"] == 4

    def test_clear_cache(self, tensor):
        session = TuckerSession()
        session.run(tensor, (4, 3, 3), n_procs=4, max_iters=1)
        session.clear_cache()
        assert session.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "maxsize": 32
        }


class TestCompiledPlanSerialization:
    def test_compiled_plan_round_trip(self):
        meta = TensorMeta(dims=(12, 10, 8), core=(4, 3, 3))
        plan = Planner(4, tree="optimal", grid="dynamic").plan(meta)
        cp = compile_plan(plan, dtype=np.float32, planner_key="optimal:dynamic")
        back = CompiledPlan.from_json(cp.to_json())
        assert back.dtype == np.dtype(np.float32)
        assert back.planner_key == "optimal:dynamic"
        assert back.tree_steps == cp.tree_steps
        assert back.core_steps == cp.core_steps

    def test_plan_round_trips_through_compiled_plan(self):
        # satellite: Plan.to_json/from_json round-trip *through* CompiledPlan
        meta = TensorMeta(dims=(12, 10, 8, 6), core=(4, 3, 3, 2))
        plan = Planner(8, tree="chain-k", grid="static").plan(meta)
        recovered = CompiledPlan.from_json(compile_plan(plan).to_json()).plan
        assert isinstance(recovered, Plan)
        # TTMTree compares by identity; the deterministic JSON form is the
        # lossless-equality witness.
        assert recovered.to_json() == plan.to_json()
        assert recovered.meta == plan.meta
        assert recovered.initial_grid == plan.initial_grid


class TestRunResult:
    def test_result_fields(self, tensor):
        session = TuckerSession(backend="threaded", n_procs=2)
        res = session.run(
            tensor, (4, 3, 3), n_procs=4, planner="optimal", max_iters=3, tol=0.0
        )
        assert res.backend == "threaded"
        assert res.n_iters == len(res.errors) == 3
        assert res.error <= res.sthosvd_error + 1e-12

    def test_explicit_plan_argument(self, tensor):
        meta = TensorMeta(dims=tensor.shape, core=(4, 3, 3))
        plan = Planner(4, tree="optimal", grid="dynamic").plan(meta)
        session = TuckerSession()
        res = session.run(tensor, plan=plan, max_iters=2)
        assert res.plan.tree_kind == "optimal"
        res2 = session.run(tensor, plan=session.compile(meta, 4, planner="optimal"), max_iters=2)
        assert res2.errors == pytest.approx(res.errors)

    def test_explicit_plan_is_cached_by_identity(self, tensor):
        meta = TensorMeta(dims=tensor.shape, core=(4, 3, 3))
        plan = Planner(4, tree="optimal", grid="dynamic").plan(meta)
        session = TuckerSession()
        r1 = session.run(tensor, plan=plan, max_iters=1)
        r2 = session.run(tensor, plan=plan, max_iters=1)
        assert r1.from_cache is False and r2.from_cache is True
        assert session.cache_info()["hits"] == 1

    def test_max_iters_zero_returns_init(self, tensor):
        session = TuckerSession()
        res = session.run(
            tensor, (4, 3, 3), n_procs=2, planner="optimal", max_iters=0
        )
        assert res.errors == [] and res.n_iters == 0
        assert res.error == res.sthosvd_error
        init = sthosvd(tensor, (4, 3, 3))
        hres = session.hooi(tensor, init, n_procs=2, max_iters=0)
        assert hres.decomposition is init and hres.errors == []
        with pytest.raises(ValueError, match="factor list"):
            session.hooi(tensor, init.factors, n_procs=2, max_iters=0)

    def test_hooi_run_share_string_planner_cache(self, tensor):
        session = TuckerSession()
        session.run(tensor, (4, 3, 3), n_procs=4, planner="optimal", max_iters=1)
        init = sthosvd(tensor, (4, 3, 3))
        session.hooi(tensor, init, n_procs=4, planner="optimal", max_iters=1)
        assert session.cache_info()["hits"] == 1

    def test_sthosvd_runs_on_backend_in_run(self, tensor):
        from repro.backends import ThreadedBackend

        backend = ThreadedBackend(n_workers=2)
        TuckerSession(backend=backend).run(
            tensor, (4, 3, 3), n_procs=4, planner="optimal", max_iters=1
        )
        # the init pass is recorded under sthosvd: tags on the backend
        assert backend.ledger.flops(tag_prefix="sthosvd:") > 0

    def test_wrong_shape_plan_rejected(self, tensor):
        meta = TensorMeta(dims=(9, 9, 9), core=(3, 3, 3))
        session = TuckerSession()
        cp = session.compile(meta, 2, planner="optimal")
        with pytest.raises(ValueError, match="plan dims"):
            session.run(tensor, plan=cp)

    def test_skip_hooi(self, tensor):
        session = TuckerSession()
        res = session.run(tensor, (4, 3, 3), n_procs=2, skip_hooi=True)
        assert res.errors == [] and res.n_iters == 0
        assert res.error == res.sthosvd_error

    def test_dtype_knob_and_preservation(self, tensor):
        session = TuckerSession()
        r32 = session.run(
            tensor.astype(np.float32), (4, 3, 3), n_procs=2,
            planner="optimal", max_iters=2,
        )
        assert r32.decomposition.core.dtype == np.float32
        assert all(f.dtype == np.float32 for f in r32.decomposition.factors)
        forced = session.run(
            tensor, (4, 3, 3), n_procs=2, planner="optimal",
            dtype=np.float32, max_iters=2,
        )
        assert forced.decomposition.core.dtype == np.float32
        default = session.run(
            tensor, (4, 3, 3), n_procs=2, planner="optimal", max_iters=2
        )
        assert default.decomposition.core.dtype == np.float64
        # float32 run still converges to the same error at float32 precision
        assert forced.error == pytest.approx(default.error, abs=1e-4)

    def test_session_hooi_from_init(self, tensor):
        init = sthosvd(tensor, (4, 3, 3), mode_order="optimal")
        session = TuckerSession()
        res = session.hooi(tensor, init, n_procs=4, max_iters=3, tol=0.0)
        assert res.n_iters == 3
        assert np.isnan(res.sthosvd_error)
        assert res.error <= init.error_vs(tensor) + 1e-12


class TestDeprecationShims:
    def test_tucker_warns_and_matches_session(self, tensor):
        with pytest.warns(DeprecationWarning, match="tucker"):
            legacy = tucker(
                tensor, (4, 3, 3), n_procs=4, planner="optimal",
                max_iters=3, tol=0.0,
            )
        fresh = TuckerSession().run(
            tensor, (4, 3, 3), n_procs=4, planner="optimal",
            max_iters=3, tol=0.0,
        )
        assert legacy.errors == pytest.approx(fresh.errors, abs=1e-14)
        assert legacy.backend == "sequential"

    def test_hooi_sequential_warns(self, tensor):
        init = sthosvd(tensor, (4, 3, 3))
        with pytest.warns(DeprecationWarning, match="hooi_sequential"):
            res = hooi_sequential(tensor, init, n_procs=2, max_iters=2)
        assert res.iterations == len(res.errors) > 0

    def test_hooi_distributed_warns(self, tensor):
        init = sthosvd(tensor, (4, 3, 3))
        cluster = SimCluster(4)
        with pytest.warns(DeprecationWarning, match="hooi_distributed"):
            res = hooi_distributed(cluster, tensor, init, max_iters=2)
        assert res.iterations == len(res.errors) > 0
        assert cluster.stats.volume() > 0
