"""Property tests: the distributed engine agrees with the sequential kernels.

For random shapes, grids and modes, ``dist_ttm`` / ``dist_gram`` must
reproduce the sequential :mod:`repro.tensor` kernels (up to BLAS summation
order — partial products are reduced in ascending-rank order, so we assert
tight tolerances rather than bit equality), ``regrid`` must move elements
*exactly* (bit-identical content, never more volume than the model's
``|X|`` charge), and scatter/gather must round-trip bit-identically.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_gram
from repro.dist.regrid import regrid
from repro.dist.ttm import dist_ttm
from repro.mpi.comm import SimCluster
from repro.tensor.linalg import gram
from repro.tensor.ttm import ttm
from repro.tensor.unfold import unfold
from repro.util.partitions import ordered_factorizations


@st.composite
def dist_cases(draw, max_ndim=4, n_grids=1):
    """A random (dims, n_procs, grids, seed) engine configuration.

    ``grids`` holds ``n_grids`` distinct-or-equal valid grids for the same
    processor count (regrid endpoints draw two).
    """
    ndim = draw(st.integers(min_value=2, max_value=max_ndim))
    dims = tuple(
        draw(st.integers(min_value=2, max_value=9)) for _ in range(ndim)
    )
    n_procs = draw(st.sampled_from([1, 2, 3, 4, 6, 8]))
    candidates = [
        g
        for g in ordered_factorizations(n_procs, ndim)
        if all(q <= d for q, d in zip(g, dims))
    ]
    if not candidates:
        n_procs = 1
        candidates = [(1,) * ndim]
    grids = tuple(draw(st.sampled_from(candidates)) for _ in range(n_grids))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return dims, n_procs, grids, seed


def _tensor(dims, seed):
    return np.random.default_rng(seed).standard_normal(dims)


class TestRoundtrip:
    @given(case=dist_cases())
    def test_scatter_gather_identity(self, case):
        dims, n_procs, (grid,), seed = case
        t = _tensor(dims, seed)
        dt = DistTensor.from_global(SimCluster(n_procs), t, grid)
        np.testing.assert_array_equal(dt.to_global(), t)


class TestDistTtm:
    @given(case=dist_cases(), data=st.data())
    def test_matches_sequential(self, case, data):
        dims, n_procs, (grid,), seed = case
        mode = data.draw(st.integers(min_value=0, max_value=len(dims) - 1))
        k = data.draw(st.integers(min_value=grid[mode], max_value=10))
        t = _tensor(dims, seed)
        a = np.random.default_rng(seed + 1).standard_normal(
            (k, dims[mode])
        )
        c = SimCluster(n_procs)
        out = dist_ttm(DistTensor.from_global(c, t, grid), a, mode)
        np.testing.assert_allclose(
            out.to_global(), ttm(t, a, mode), rtol=1e-10, atol=1e-12
        )
        # exact paper volume and flop accounting
        expected_vol = (grid[mode] - 1) * out.cardinality
        assert c.stats.volume(op="reduce_scatter") == expected_vol
        assert c.stats.flops() == k * math.prod(dims)


class TestDistGram:
    @given(case=dist_cases(), data=st.data())
    def test_matches_sequential(self, case, data):
        dims, n_procs, (grid,), seed = case
        mode = data.draw(st.integers(min_value=0, max_value=len(dims) - 1))
        t = _tensor(dims, seed)
        g = dist_gram(
            DistTensor.from_global(SimCluster(n_procs), t, grid), mode
        )
        np.testing.assert_allclose(
            g, gram(unfold(t, mode)), rtol=1e-9, atol=1e-10
        )


class TestRegrid:
    @given(case=dist_cases(n_grids=2))
    @settings(max_examples=60)
    def test_exact_and_bounded(self, case):
        dims, n_procs, (src, dst), seed = case
        t = _tensor(dims, seed)
        c = SimCluster(n_procs)
        dt = DistTensor.from_global(c, t, src)
        out = regrid(dt, dst)
        assert out.grid.shape == dst
        np.testing.assert_array_equal(out.to_global(), t)
        moved = c.stats.volume(op="alltoallv")
        assert moved <= t.size  # the model's |X| charge is an upper bound
        if src == dst:
            assert out is dt and moved == 0

    @given(case=dist_cases(n_grids=2))
    @settings(max_examples=30)
    def test_composes_with_ttm(self, case):
        """regrid then TTM == TTM on the original layout == sequential."""
        dims, n_procs, (src, dst), seed = case
        t = _tensor(dims, seed)
        c = SimCluster(n_procs)
        moved = regrid(DistTensor.from_global(c, t, src), dst)
        mode = len(dims) - 1
        k = max(dst[mode], 3)
        a = np.random.default_rng(seed + 2).standard_normal((k, dims[mode]))
        out = dist_ttm(moved, a, mode)
        np.testing.assert_allclose(
            out.to_global(), ttm(t, a, mode), rtol=1e-10, atol=1e-12
        )
