"""Randomized (sketched) Tucker: math units, session surface, satellites.

Covers the building blocks in :mod:`repro.backends.sketch`, the
schedule compiler, seed-determinism and clamping through
``TuckerSession.run(method=...)`` on every backend, the HOOI
early-stop semantics (``converged`` / ``stopped_reason``), the serving
layer's seed handling, the method-aware cost model, and the
``run_methods`` bench comparison. Cross-backend *numerical* agreement
for the randomized methods lives in the conformance harness
(``test_backend_conformance.py``); this file owns everything else.
"""

import json

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    BackendUnavailableError,
    get_backend,
)
from repro.backends import sketch as rsk
from repro.backends.schedule import RAND_METHODS, compile_rand_steps
from repro.backends.select import (
    default_profile,
    estimate_seconds,
    init_flops,
    merge_profile,
    profile_from_trace,
    select_backend,
    sweep_flops,
)
from repro.cli import main
from repro.core.meta import TensorMeta
from repro.session import TuckerSession
from repro.tensor.random import low_rank_tensor
from repro.tensor.ttm import ttm_chain

#: a simcluster-feasible case: every rank / sketch width >= grid extent.
DIMS, CORE, PROCS = (20, 18, 16), (5, 4, 3), 4


def make_backend(name, n_procs=PROCS):
    try:
        if name in ("threaded", "procpool"):
            return get_backend(name, n_procs=3)
        return get_backend(name, n_procs=n_procs)
    except BackendUnavailableError as exc:  # pragma: no cover - host-specific
        pytest.skip(f"{name} unavailable here: {exc}")


def fixture(dims=DIMS, core=CORE, noise=0.05, seed=0, dtype=np.float64):
    return low_rank_tensor(dims, core, noise=noise, seed=seed).astype(
        dtype, copy=False
    )


def true_error(arr, dec):
    """Offline reconstruction error — no norm-identity shortcuts."""
    recon = ttm_chain(dec.core, list(dec.factors), list(range(arr.ndim)))
    diff = recon - np.asarray(arr, dtype=recon.dtype)
    return float(
        np.linalg.norm(diff.reshape(-1)) / np.linalg.norm(arr.reshape(-1))
    )


# --------------------------------------------------------------------- #
# sketch math units
# --------------------------------------------------------------------- #


class TestSketchMath:
    def test_sketch_width_clamps_to_dim(self):
        assert rsk.sketch_width(4, 5, 100) == 9
        assert rsk.sketch_width(4, 50, 10) == 10  # rank + p > dim clamps
        assert rsk.sketch_width(10, 0, 6) == 6
        assert rsk.sketch_width(0, 0, 6) == 1  # never degenerate

    def test_mode_spec_shapes_and_out_shape(self):
        rng = np.random.default_rng(0)
        spec = rsk.mode_sketch_spec(rng, (6, 5, 4), 1, 2, 1, np.float64)
        assert spec.mode == 1
        assert sorted(spec.omegas) == [0, 2]
        assert spec.omegas[0].shape == (3, 6)
        assert spec.omegas[2].shape == (3, 4)
        assert rsk.out_shape((6, 5, 4), spec) == (3, 5, 3)

    def test_core_spec_widths_follow_minster(self):
        rng = np.random.default_rng(0)
        spec = rsk.core_sketch_spec(rng, (30, 5, 8), (3, 3, 3), 2, np.float64)
        assert spec.mode == -1
        # t = min(2*min(k+p, d) + 1, d) per mode
        assert spec.omegas[0].shape == (11, 30)
        assert spec.omegas[1].shape == (5, 5)
        assert spec.omegas[2].shape == (8, 8)

    def test_single_pass_specs_order(self):
        rng = np.random.default_rng(3)
        specs = rsk.single_pass_specs(
            rng, (6, 5, 4), (2, 2, 2), 1, np.float64
        )
        assert [s.mode for s in specs] == [0, 1, 2, -1]

    def test_sketch_matches_dense_ttm_chain(self):
        rng = np.random.default_rng(1)
        t = rng.standard_normal((6, 5, 4))
        spec = rsk.mode_sketch_spec(
            np.random.default_rng(2), t.shape, 0, 2, 1, np.float64
        )
        (w,), norm_sq = rsk.sketch_arrays(t, [spec])
        expected = ttm_chain(t, [spec.omegas[1], spec.omegas[2]], [1, 2])
        np.testing.assert_allclose(w, expected, atol=1e-12)
        assert norm_sq == pytest.approx(float(np.dot(t.ravel(), t.ravel())))

    def test_blocked_accumulation_equals_whole_tensor(self):
        rng = np.random.default_rng(4)
        t = rng.standard_normal((8, 5, 4))
        specs = rsk.single_pass_specs(
            np.random.default_rng(5), t.shape, (2, 2, 2), 1, np.float64
        )
        whole, norm_sq = rsk.sketch_arrays(t, specs)
        # Re-accumulate from two blocks cut along mode 0.
        for spec, ref in zip(specs, whole):
            out = np.zeros(rsk.out_shape(t.shape, spec), dtype=t.dtype)
            for lo, hi in ((0, 3), (3, 8)):
                ranges = ((lo, hi), (0, 5), (0, 4))
                rsk.add_block_contribution(out, t[lo:hi], spec, ranges)
            np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_orthonormal_cols_is_orthonormal_and_deterministic(self):
        rng = np.random.default_rng(6)
        m = rng.standard_normal((12, 4))
        q1, q2 = rsk.orthonormal_cols(m), rsk.orthonormal_cols(m)
        np.testing.assert_allclose(q1.T @ q1, np.eye(4), atol=1e-12)
        np.testing.assert_array_equal(q1, q2)

    def test_solve_core_recovers_exact_core(self):
        rng = np.random.default_rng(7)
        dims, core = (10, 9, 8), (3, 2, 2)
        factors = [
            rsk.orthonormal_cols(rng.standard_normal((d, k)))
            for d, k in zip(dims, core)
        ]
        g = rng.standard_normal(core)
        y = ttm_chain(g, factors, [0, 1, 2])
        spec = rsk.core_sketch_spec(rng, dims, core, 2, np.float64)
        (h,), _ = rsk.sketch_arrays(y, [spec])
        recovered = rsk.solve_core(h, spec, factors)
        np.testing.assert_allclose(recovered, g, atol=1e-8)

    def test_sketch_flops_counts_chain(self):
        rng = np.random.default_rng(8)
        spec = rsk.mode_sketch_spec(rng, (10, 8, 6), 0, 2, 1, np.float64)
        # mode 1 first: 3*480; then mode 2 on the shrunk (10,3,6): 3*180
        assert rsk.sketch_flops((10, 8, 6), spec) == pytest.approx(
            3 * 480 + 3 * 180
        )


class TestCompileRandSteps:
    META = TensorMeta(dims=(10, 8, 6), core=(3, 3, 2))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method must be one of"):
            compile_rand_steps([0, 1, 2], self.META, method="hosvd")

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError, match="oversample"):
            compile_rand_steps(
                [0, 1, 2], self.META, method="rsthosvd", oversample=-1
            )
        with pytest.raises(ValueError, match="power_iters"):
            compile_rand_steps(
                [0, 1, 2], self.META, method="rsthosvd", power_iters=-1
            )

    def test_rsthosvd_interleaves_sketch_and_ttm(self):
        steps = compile_rand_steps(
            [2, 0, 1], self.META, method="rsthosvd", oversample=3,
            power_iters=2,
        )
        ops = [(s.op, s.mode) for s in steps if s.op != "free"]
        assert ops == [
            ("sketch", 2), ("ttm", 2),
            ("sketch", 0), ("ttm", 0),
            ("sketch", 1), ("ttm", 1),
        ]
        first = steps[0]
        assert (first.p, first.q, first.k) == (3, 2, 2)

    def test_single_pass_is_one_step(self):
        steps = compile_rand_steps(
            [0, 1, 2], self.META, method="sp-rsthosvd", oversample=4
        )
        assert len(steps) == 1
        assert steps[0].op == "spsketch" and steps[0].p == 4


# --------------------------------------------------------------------- #
# session surface, all backends
# --------------------------------------------------------------------- #


class TestRandomizedSession:
    @pytest.mark.parametrize("method", RAND_METHODS)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_seed_determinism_per_backend(self, name, method):
        t = fixture()

        def one(seed):
            session = TuckerSession(backend=make_backend(name))
            try:
                return session.run(
                    t, CORE, n_procs=PROCS, method=method, seed=seed,
                    power_iters=1, skip_hooi=True,
                )
            finally:
                session.close()

        a, b, c = one(11), one(11), one(99)
        np.testing.assert_array_equal(
            a.decomposition.core, b.decomposition.core
        )
        for fa, fb in zip(a.decomposition.factors, b.decomposition.factors):
            np.testing.assert_array_equal(fa, fb)
        assert not np.array_equal(
            a.decomposition.core, c.decomposition.core
        ), "different seeds must draw different sketches"

    @pytest.mark.parametrize("method", RAND_METHODS)
    def test_float32_end_to_end(self, method):
        t = fixture(dtype=np.float32)
        res = TuckerSession(backend="sequential").run(
            t, CORE, method=method, seed=1, skip_hooi=True
        )
        assert res.decomposition.core.dtype == np.float32
        assert all(
            f.dtype == np.float32 for f in res.decomposition.factors
        )
        assert true_error(t, res.decomposition) < 0.5

    @pytest.mark.parametrize("method", RAND_METHODS)
    def test_oversample_past_dims_clamps(self, method):
        t = fixture(dims=(8, 7, 6), core=(3, 3, 2))
        res = TuckerSession(backend="sequential").run(
            t, (3, 3, 2), method=method, seed=2, oversample=100,
            skip_hooi=True,
        )
        for mode, f in enumerate(res.decomposition.factors):
            assert f.shape == ((8, 7, 6)[mode], (3, 3, 2)[mode])
        assert res.decomposition.core.shape == (3, 3, 2)
        assert true_error(t, res.decomposition) < 0.5

    def test_rsthosvd_reported_error_is_true_error(self):
        # The final rsthosvd handle is a projection of the input, so the
        # norm identity is exact — the reported error must match the
        # offline reconstruction error.
        t = fixture()
        res = TuckerSession(backend="sequential").run(
            t, CORE, method="rsthosvd", seed=3, skip_hooi=True
        )
        assert res.sthosvd_error == pytest.approx(
            true_error(t, res.decomposition), rel=1e-8
        )

    @pytest.mark.parametrize("method", RAND_METHODS)
    def test_error_within_bound_of_exact(self, method):
        t = fixture(noise=0.05)
        session = TuckerSession(backend="sequential")
        exact = session.run(t, CORE, skip_hooi=True)
        rand = session.run(
            t, CORE, method=method, seed=4, power_iters=1, skip_hooi=True
        )
        assert true_error(t, rand.decomposition) <= 1.5 * max(
            exact.sthosvd_error, 1e-12
        )

    def test_hooi_refines_randomized_init(self):
        t = fixture()
        session = TuckerSession(backend="sequential")
        res = session.run(t, CORE, method="rsthosvd", seed=5, max_iters=5)
        assert res.method == "rsthosvd"
        assert res.n_iters >= 1
        assert res.stopped_reason in ("converged", "max_iters")
        assert res.errors[-1] <= res.sthosvd_error + 1e-12

    def test_method_field_defaults_to_exact(self):
        t = fixture(dims=(8, 7, 6), core=(2, 2, 2))
        res = TuckerSession(backend="sequential").run(
            t, (2, 2, 2), max_iters=1
        )
        assert res.method == "exact"

    def test_unknown_method_rejected(self):
        t = fixture(dims=(8, 7, 6), core=(2, 2, 2))
        with pytest.raises(ValueError, match="method must be"):
            TuckerSession(backend="sequential").run(
                t, (2, 2, 2), method="hosvd"
            )

    def test_run_many_forwards_method_and_seed(self):
        t1, t2 = fixture(seed=0), fixture(seed=1)
        with TuckerSession(backend="sequential") as session:
            batch = session.run_many(
                [t1, t2], core_dims=CORE, method="rsthosvd", seed=6,
                power_iters=1, skip_hooi=True,
            )
            singles = [
                session.run(
                    t, CORE, method="rsthosvd", seed=6, power_iters=1,
                    skip_hooi=True,
                )
                for t in (t1, t2)
            ]
        assert batch.n_items == 2
        for item, single in zip(batch.items, singles):
            np.testing.assert_array_equal(
                item.result.decomposition.core,
                single.decomposition.core,
            )

    @pytest.mark.parametrize("name", ["sequential", "threaded", "procpool"])
    @pytest.mark.parametrize("method", RAND_METHODS)
    def test_spilled_run_matches_in_memory(self, name, method, tmp_path):
        # One pass over the spill blocks accumulates every sketch; the
        # blocked accumulation must agree with the resident path.
        t = fixture(noise=0.01)
        session = TuckerSession(backend=make_backend(name))
        try:
            resident = session.run(
                t, CORE, n_procs=PROCS, method=method, seed=7,
                power_iters=1, skip_hooi=True,
            )
            spilled = session.run(
                t, CORE, n_procs=PROCS, method=method, seed=7,
                power_iters=1, skip_hooi=True, storage="mmap",
                spill_dir=str(tmp_path),
            )
        finally:
            session.close()
        assert spilled.storage == "mmap"
        assert spilled.sthosvd_error == pytest.approx(
            resident.sthosvd_error, abs=1e-8
        )
        np.testing.assert_allclose(
            spilled.decomposition.core, resident.decomposition.core,
            atol=1e-8,
        )
        for a, b in zip(
            spilled.decomposition.factors, resident.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-8)


# --------------------------------------------------------------------- #
# HOOI early-stop semantics (the bugfix)
# --------------------------------------------------------------------- #


class TestHooiEarlyStop:
    def _run_with_core_norms(self, monkeypatch, g_fracs, **kwargs):
        """HOOI with scripted per-iteration core norms (as input fractions)."""
        t = fixture(dims=(8, 7, 6), core=(2, 2, 2))
        session = TuckerSession(backend="sequential")
        init = session.sthosvd(t, (2, 2, 2)).decomposition
        backend = session.backend
        real = backend.fro_norm_sq
        fracs = iter(g_fracs)
        t_norm_sq = float(np.dot(t.ravel(), t.ravel()))

        def fake(handle, *, tag="norm"):
            if tag == "norm:core":
                return next(fracs) * t_norm_sq
            return real(handle, tag=tag)

        monkeypatch.setattr(backend, "fro_norm_sq", fake)
        return session.hooi(t, init, **kwargs)

    def test_plateau_reports_converged(self, monkeypatch):
        res = self._run_with_core_norms(
            monkeypatch, [0.9, 0.9, 0.9], max_iters=5, tol=1e-8
        )
        assert res.converged is True
        assert res.stopped_reason == "converged"
        assert res.n_iters == 2

    def test_rising_error_stops_as_non_monotone(self, monkeypatch):
        # Core norm drops -> error rises. The old ``delta < tol`` check
        # reported this as converged; it must stop and say why instead.
        res = self._run_with_core_norms(
            monkeypatch, [0.9, 0.5, 0.4], max_iters=5, tol=1e-8
        )
        assert res.converged is False
        assert res.stopped_reason == "non-monotone"
        assert res.n_iters == 2
        assert res.errors[-1] > res.errors[-2]

    def test_exhausting_iterations_reports_max_iters(self, monkeypatch):
        res = self._run_with_core_norms(
            monkeypatch, [0.5, 0.7, 0.9], max_iters=3, tol=1e-8
        )
        assert res.converged is False
        assert res.stopped_reason == "max_iters"
        assert res.n_iters == 3

    def test_real_run_converges_cleanly(self):
        t = fixture(dims=(8, 7, 6), core=(2, 2, 2), noise=0.0)
        res = TuckerSession(backend="sequential").run(
            t, (2, 2, 2), max_iters=10, tol=1e-6
        )
        assert res.converged is True
        assert res.stopped_reason == "converged"


# --------------------------------------------------------------------- #
# serving: seed handling + randomized dispatch
# --------------------------------------------------------------------- #


class TestServeRandomized:
    def test_conflicting_seeds_rejected(self):
        from repro.serve.request import parse_request

        with pytest.raises(ValueError, match="conflicting seeds"):
            parse_request({
                "core": [2, 2, 2], "seed": 1,
                "random": {"dims": [6, 6, 6], "seed": 2},
            })

    def test_agreeing_and_single_seeds_accepted(self):
        from repro.serve.request import parse_request

        both = parse_request({
            "core": [2, 2, 2], "seed": 3,
            "random": {"dims": [6, 6, 6], "seed": 3},
        })
        assert both.seed == 3
        inner = parse_request({
            "core": [2, 2, 2], "random": {"dims": [6, 6, 6], "seed": 4},
        })
        assert inner.seed == 4
        top = parse_request({
            "core": [2, 2, 2], "seed": 5,
            "random": {"dims": [6, 6, 6]},
        })
        assert top.seed == 5

    def test_request_accepts_randomized_methods(self):
        from repro.serve.request import ServeRequest

        for method in RAND_METHODS:
            req = ServeRequest(
                core=(2, 2, 2), dims=(6, 6, 6), method=method
            )
            assert req.method == method
        with pytest.raises(ValueError, match="method must be one of"):
            ServeRequest(core=(2, 2, 2), dims=(6, 6, 6), method="hosvd")

    @pytest.mark.parametrize("method", RAND_METHODS)
    def test_served_result_replays_bit_for_bit(self, method):
        from repro.serve import ServeRequest, TuckerServer

        t = fixture(dims=(10, 8, 6), core=(3, 3, 2))
        with TuckerServer(workers=1, backend="sequential") as server:
            ticket = server.submit(ServeRequest(
                array=t, core=(3, 3, 2), method=method, seed=9, id="r0"
            ))
            res = ticket.result(timeout=120)
        assert res.ok, res.error
        assert res.value.method == method
        assert res.value.n_iters == 0  # init-only, like "sthosvd"
        ref = TuckerSession(backend="sequential").run(
            t, (3, 3, 2), method=method, seed=9, skip_hooi=True
        )
        np.testing.assert_array_equal(
            res.value.decomposition.core, ref.decomposition.core
        )


# --------------------------------------------------------------------- #
# method-aware cost model
# --------------------------------------------------------------------- #


class TestMethodAwareCostModel:
    DIMS, CORE = (200, 180, 160), (8, 6, 5)

    def test_exact_init_flops_is_sweep(self):
        assert init_flops(self.DIMS, self.CORE) == sweep_flops(
            self.DIMS, self.CORE
        )

    def test_randomized_flops_beat_exact_gram(self):
        exact = init_flops(self.DIMS, self.CORE, "exact")
        rand = init_flops(self.DIMS, self.CORE, "rsthosvd")
        sp = init_flops(self.DIMS, self.CORE, "sp-rsthosvd")
        assert rand < exact and sp < exact

    def test_power_iterations_are_charged(self):
        base = init_flops(self.DIMS, self.CORE, "rsthosvd", power_iters=0)
        powered = init_flops(self.DIMS, self.CORE, "rsthosvd", power_iters=2)
        assert powered > base

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="method must be one of"):
            init_flops(self.DIMS, self.CORE, "hosvd")

    def test_estimate_seconds_prices_methods_apart(self):
        params = default_profile()["backends"]["sequential"]
        kwargs = dict(
            n_procs=1, dtype=np.float64, available_cores=4
        )
        exact = estimate_seconds(params, self.DIMS, self.CORE, **kwargs)
        rand = estimate_seconds(
            params, self.DIMS, self.CORE, method="rsthosvd", **kwargs
        )
        assert rand < exact

    def test_estimate_uses_sketch_rate(self):
        params = dict(default_profile()["backends"]["sequential"])
        slow = dict(params, sketch_rate=params["rate"] / 10.0)
        kwargs = dict(n_procs=1, dtype=np.float64, available_cores=4)
        fast_s = estimate_seconds(
            params, self.DIMS, self.CORE, method="rsthosvd", **kwargs
        )
        slow_s = estimate_seconds(
            slow, self.DIMS, self.CORE, method="rsthosvd", **kwargs
        )
        assert slow_s == pytest.approx(fast_s * 10.0, rel=1e-6)
        # exact pricing ignores sketch_rate entirely
        assert estimate_seconds(
            params, self.DIMS, self.CORE, **kwargs
        ) == estimate_seconds(slow, self.DIMS, self.CORE, **kwargs)

    def test_select_backend_is_method_pure(self):
        a = select_backend(
            self.DIMS, self.CORE, n_procs=2, available_cores=4,
            method="rsthosvd",
        )
        b = select_backend(
            self.DIMS, self.CORE, n_procs=2, available_cores=4,
            method="rsthosvd",
        )
        assert (a.backend, a.n_procs, a.scores) == (
            b.backend, b.n_procs, b.scores
        )
        assert "method=rsthosvd" in a.reason
        exact = select_backend(
            self.DIMS, self.CORE, n_procs=2, available_cores=4
        )
        assert "method=" not in exact.reason

    def test_merge_profile_keeps_sketch_rate(self):
        merged = merge_profile(
            {"backends": {"threaded": {"sketch_rate": 5.0e9}}}
        )
        assert merged["backends"]["threaded"]["sketch_rate"] == 5.0e9
        assert (
            merged["backends"]["sequential"]["sketch_rate"]
            == default_profile()["backends"]["sequential"]["sketch_rate"]
        )

    def test_profile_from_trace_extracts_sketch_rate(self):
        t = fixture()
        with TuckerSession(backend="sequential", trace=True) as session:
            result = session.run(
                t, CORE, method="rsthosvd", seed=8, power_iters=1,
                skip_hooi=True,
            )
        partial = profile_from_trace(result.trace)
        rate = partial["backends"]["sequential"]["sketch_rate"]
        assert np.isfinite(rate) and rate > 0
        merged = merge_profile(partial)
        assert merged["backends"]["sequential"]["sketch_rate"] == (
            pytest.approx(rate)
        )

    def test_profile_from_trace_ignores_exact_runs(self):
        t = fixture(dims=(8, 7, 6), core=(2, 2, 2))
        with TuckerSession(backend="sequential", trace=True) as session:
            result = session.run(t, (2, 2, 2), max_iters=1)
        assert "backends" not in profile_from_trace(result.trace)


# --------------------------------------------------------------------- #
# bench comparison + CLI surface
# --------------------------------------------------------------------- #


class TestRunMethodsBench:
    def test_compares_all_methods(self):
        from repro.bench.runner import run_methods

        t = fixture()
        out = run_methods(t, CORE, power_iters=1, seed=10)
        assert set(out) == {"exact", "rsthosvd", "sp-rsthosvd"}
        assert out["exact"]["speedup"] == pytest.approx(1.0)
        assert out["exact"]["error_ratio"] == pytest.approx(1.0)
        for name in RAND_METHODS:
            row = out[name]
            assert row["seconds"] > 0
            assert np.isfinite(row["true_error"])
            assert row["error_ratio"] <= 1.5

    def test_respects_method_subset(self):
        from repro.bench.runner import run_methods

        t = fixture(dims=(10, 8, 6), core=(3, 3, 2))
        out = run_methods(
            t, (3, 3, 2), methods=("rsthosvd",), seed=11
        )
        # the reference is pulled in even when not requested
        assert set(out) == {"exact", "rsthosvd"}


class TestDecomposeCliMethod:
    ARGS = [
        "decompose", "--random", "12,10,8", "--core", "4,3,3",
        "--seed", "5", "--skip-hooi",
    ]

    def test_json_payload_carries_method(self, capsys):
        rc = main(self.ARGS + ["--method", "rsthosvd", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "rsthosvd"
        assert payload["n_iters"] == 0
        assert np.isfinite(payload["sthosvd_error"])

    def test_same_seed_reproduces(self, capsys):
        args = self.ARGS + ["--method", "sp-rsthosvd", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["sthosvd_error"] == second["sthosvd_error"]

    def test_text_output_names_the_method(self, capsys):
        rc = main(self.ARGS + ["--method", "rsthosvd", "--power-iters", "1"])
        assert rc == 0
        assert "rsthosvd error:" in capsys.readouterr().out
