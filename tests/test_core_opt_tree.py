"""Tests for the optimal-tree DP (paper section 3.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import tree_cost
from repro.core.enumerate_trees import brute_force_optimal_cost
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree, optimal_tree_cost
from repro.core.ordering import h_ordering, k_ordering
from repro.core.trees import balanced_tree, chain_tree


def random_meta(seed: int, n: int = 4, dim_pool=(4, 6, 9, 12, 20)) -> TensorMeta:
    r = random.Random(seed)
    dims = tuple(r.choice(dim_pool) for _ in range(n))
    core = tuple(max(1, d // r.choice([1, 2, 3, 4])) for d in dims)
    return TensorMeta(dims=dims, core=core)


class TestOptimality:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25)
    def test_matches_brute_force_n3(self, seed):
        m = random_meta(seed, n=3)
        assert optimal_tree_cost(m) == brute_force_optimal_cost(m)

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=8)
    def test_matches_brute_force_n4(self, seed):
        m = random_meta(seed, n=4)
        assert optimal_tree_cost(m) == brute_force_optimal_cost(m)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30)
    def test_never_worse_than_heuristics(self, seed):
        m = random_meta(seed, n=5)
        opt = optimal_tree_cost(m)
        assert opt <= tree_cost(chain_tree(5, k_ordering(m)), m)
        assert opt <= tree_cost(chain_tree(5, h_ordering(m)), m)
        assert opt <= tree_cost(balanced_tree(5), m)

    def test_reconstructed_tree_cost_matches_table(self):
        m = random_meta(7, n=5)
        t = optimal_tree(m)
        assert tree_cost(t, m) == optimal_tree_cost(m)

    def test_returned_tree_is_valid(self):
        for seed in range(5):
            m = random_meta(seed, n=5)
            optimal_tree(m).validate()


class TestKnownInstances:
    def test_paper_max_gain_tensor(self):
        # the tensor the paper reports maximum overall gain on
        m = TensorMeta(
            dims=(400, 100, 100, 50, 20), core=(80, 80, 10, 40, 10)
        )
        opt = optimal_tree_cost(m)
        assert opt == 350_400_000_000  # pinned regression value
        assert opt < tree_cost(balanced_tree(5), m)

    def test_single_mode(self):
        m = TensorMeta(dims=(10,), core=(2,))
        assert optimal_tree_cost(m) == 0
        assert optimal_tree(m).n_ttm_ops == 0

    def test_two_modes_cost_is_sum_of_singles(self):
        # with N=2 no sharing is possible: cost = K0|T| + K1|T|
        m = TensorMeta(dims=(10, 20), core=(3, 4))
        assert optimal_tree_cost(m) == (3 + 4) * 200

    def test_uniform_modes_prefer_reuse(self):
        # all modes identical: optimal tree must beat independent chains
        m = TensorMeta(dims=(20,) * 5, core=(4,) * 5)
        assert optimal_tree_cost(m) < tree_cost(chain_tree(5), m)


class TestPolicies:
    def test_no_reuse_equals_best_chain_forest(self):
        # no_reuse = independent chains with optimal per-chain orderings;
        # verify by explicit chain-cost minimization over each target mode
        from itertools import permutations

        m = random_meta(11, n=4)

        def chain_cost(order):
            card, total = m.cardinality, 0
            for mode in order:
                total += m.core[mode] * card
                card = card * m.core[mode] // m.dims[mode]
            return total

        expected = 0
        for target in range(4):
            others = [x for x in range(4) if x != target]
            expected += min(chain_cost(p) for p in permutations(others))
        assert optimal_tree_cost(m, policy="no_reuse") == expected

    def test_policy_ordering(self):
        # optimal <= eager_reuse <= ... and optimal <= no_reuse
        for seed in range(10):
            m = random_meta(seed, n=5)
            opt = optimal_tree_cost(m)
            assert opt <= optimal_tree_cost(m, policy="eager_reuse")
            assert opt <= optimal_tree_cost(m, policy="no_reuse")

    def test_eager_reuse_strictly_suboptimal_witness(self):
        # The paper's section 3.3 remark: always reusing whenever R != 0 is
        # incorrect — the optimal tree may postpone a high-cost mode until
        # the tensor has shrunk. Pinned witness (found by search): eager
        # reuse loses strictly.
        m = TensorMeta(dims=(8, 4, 8, 100, 4), core=(2, 2, 4, 50, 4))
        opt = optimal_tree_cost(m)
        eager = optimal_tree_cost(m, policy="eager_reuse")
        assert opt == 3_443_200
        assert eager == 3_456_000
        assert opt < eager

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            optimal_tree_cost(random_meta(0), policy="greedy")


class TestBinaryLemma:
    """Lemma 3.1: restricting to <=2-way splits loses nothing (the brute
    force explores exactly the reuse/split grammar, so equality with the DP
    on N=3/4 above is the lemma's computational check); additionally the
    returned optimal trees must have at most 2 children per internal node
    when built by the DP's binary grammar."""

    def test_dp_trees_have_sibling_groups_of_two(self):
        for seed in range(5):
            m = random_meta(seed, n=5)
            t = optimal_tree(m)
            for node in t.nodes:
                if node.kind != "leaf":
                    assert 1 <= len(node.children) <= 2
