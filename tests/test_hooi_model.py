"""Tests for the metadata-only model executor, including the engine-vs-model
agreement the substitution argument rests on (DESIGN.md section 2)."""

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.dist.dtensor import DistTensor
from repro.hooi.hooi import hooi_step_distributed
from repro.hooi.model import predict
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.mpi.machine import MachineModel
from repro.tensor.random import low_rank_tensor


@pytest.fixture
def meta():
    return TensorMeta(dims=(12, 10, 8, 6), core=(4, 3, 3, 2))


class TestPredictBasics:
    def test_flops_match_plan(self, meta):
        plan = Planner(8).plan(meta)
        rep = predict(plan)
        assert rep.ttm_flops == plan.flops

    def test_volumes_match_plan(self, meta):
        for grid in ("static", "dynamic"):
            plan = Planner(8, grid=grid).plan(meta)
            rep = predict(plan)
            assert rep.ttm.volume == plan.ttm_volume
            assert rep.regrid.volume == plan.regrid_volume
            assert rep.comm_volume == plan.total_volume
            assert rep.core.volume == (
                plan.core_ttm_volume + plan.core_regrid_volume
            )

    def test_include_flags(self, meta):
        plan = Planner(8).plan(meta)
        no_svd = predict(plan, include_svd=False)
        assert no_svd.svd.seconds == 0 and no_svd.svd.volume == 0
        no_core = predict(plan, include_core=False)
        assert no_core.core.seconds == 0 and no_core.core.volume == 0

    def test_total_is_sum_of_phases(self, meta):
        plan = Planner(8).plan(meta)
        rep = predict(plan)
        assert rep.total_seconds == pytest.approx(
            rep.ttm.seconds
            + rep.regrid.seconds
            + rep.svd.seconds
            + rep.core.seconds
        )

    def test_breakdown_keys(self, meta):
        rep = predict(Planner(8).plan(meta))
        assert set(rep.breakdown()) == {"svd", "ttm_compute", "ttm_comm"}

    def test_machine_scaling(self, meta):
        plan = Planner(8).plan(meta)
        fast = predict(plan, MachineModel(flop_rate=1e15))
        slow = predict(plan, MachineModel(flop_rate=1e9))
        assert slow.ttm.compute_seconds > fast.ttm.compute_seconds

    def test_single_rank_is_communication_free(self, meta):
        plan = Planner(1).plan(meta)
        rep = predict(plan)
        assert rep.comm_volume == 0
        assert rep.ttm.comm_seconds == 0
        assert rep.svd.volume == 0  # allreduce over 1 rank is free


class TestEngineVsModel:
    """Execute one HOOI invocation on the virtual cluster and compare with
    the closed-form model: reduce-scatter volumes match exactly, regrid is
    bounded by the model's |In| charge, SVD comm bounded by |Z| + allreduce."""

    @pytest.mark.parametrize("grid_kind", ["static", "dynamic"])
    @pytest.mark.parametrize("n_procs", [4, 8])
    def test_volume_agreement(self, meta, grid_kind, n_procs):
        t = low_rank_tensor(meta.dims, meta.core, noise=0.1, seed=1)
        init = sthosvd(t, meta.core)
        plan = Planner(n_procs, tree="optimal", grid=grid_kind).plan(meta)
        cluster = SimCluster(n_procs)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        hooi_step_distributed(dt, init.factors, plan, tag="h")
        rep = predict(plan)

        # tree TTM reduce-scatter: exact
        assert cluster.stats.volume(
            op="reduce_scatter", tag_prefix="h:ttm"
        ) == rep.ttm.volume
        # tree regrids: engine moves at most the modeled full redistribution
        assert cluster.stats.volume(
            op="alltoallv", tag_prefix="h:regrid"
        ) <= rep.regrid.volume
        # core chain reduce-scatter: exact
        assert (
            cluster.stats.volume(op="reduce_scatter", tag_prefix="h:core")
            == plan.core_ttm_volume
        )
        # core chain regrids: bounded by the model charge
        assert (
            cluster.stats.volume(op="alltoallv", tag_prefix="h:core")
            <= plan.core_regrid_volume
        )
        # SVD: engine <= model (regrid path counts moved-only)
        assert cluster.stats.volume(tag_prefix="h:svd") <= rep.svd.volume

    def test_engine_seconds_positive(self, meta):
        t = low_rank_tensor(meta.dims, meta.core, noise=0.1, seed=2)
        init = sthosvd(t, meta.core)
        plan = Planner(8).plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        hooi_step_distributed(dt, init.factors, plan)
        assert cluster.stats.total_seconds() > 0
