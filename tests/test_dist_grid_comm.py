"""Tests for processor grids and mode groups."""

import pytest

from repro.dist.grid_comm import ProcessorGrid
from repro.mpi.comm import SimCluster


@pytest.fixture
def grid8():
    return ProcessorGrid(SimCluster(8), (2, 2, 2))


class TestConstruction:
    def test_product_must_match(self):
        with pytest.raises(ValueError, match="cells"):
            ProcessorGrid(SimCluster(8), (2, 2))

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ProcessorGrid(SimCluster(4), (4, 0))


class TestCoordinates:
    def test_roundtrip(self, grid8):
        for rank in range(8):
            assert grid8.rank_of(grid8.coords(rank)) == rank

    def test_c_order(self, grid8):
        assert grid8.coords(0) == (0, 0, 0)
        assert grid8.coords(1) == (0, 0, 1)
        assert grid8.coords(4) == (1, 0, 0)

    def test_bounds_checked(self, grid8):
        with pytest.raises(ValueError):
            grid8.coords(8)
        with pytest.raises(ValueError):
            grid8.rank_of((2, 0, 0))
        with pytest.raises(ValueError):
            grid8.rank_of((0, 0))


class TestModeGroups:
    def test_group_of_rank(self, grid8):
        g = grid8.mode_group(0, 0)
        # ranks with coords (*, 0, 0): 0 and 4
        assert g == [0, 4]

    def test_groups_partition_ranks(self, grid8):
        for mode in range(3):
            groups = grid8.mode_groups(mode)
            flat = [r for g in groups for r in g]
            assert sorted(flat) == list(range(8))
            assert all(len(g) == grid8.shape[mode] for g in groups)

    def test_group_ordered_by_mode_coordinate(self, grid8):
        for mode in range(3):
            for g in grid8.mode_groups(mode):
                coords = [grid8.coords(r)[mode] for r in g]
                assert coords == sorted(coords) == list(range(grid8.shape[mode]))

    def test_singleton_mode(self):
        grid = ProcessorGrid(SimCluster(4), (4, 1))
        assert all(g == [r] for r, g in zip(range(4), grid.mode_groups(1)))
