"""Golden-ledger regression tests.

The paper's communication-volume formulas — ``(q_n - 1)|Out(u)|`` per
reduce-scatter TTM (section 3), owner-moved element counts per regrid
all-to-all (section 4.3) — are frozen, for three canonical
configurations, into ``tests/golden/*.json``: the planner's closed-form
volumes plus the volumes/FLOPs actually executed by one HOOI invocation
on every registered backend. The tests rebuild each record from scratch
and require **bit-for-bit** equality with the golden file, so any drift
in the planner DP, the engine's collectives, or a backend's ledger
accounting fails loudly.

Regenerate (only when a change is *supposed* to move the numbers)::

    PYTHONPATH=src:tests python -m test_golden_ledger

The frozen quantities depend only on shapes and grids — never on tensor
values, BLAS builds or timing — which is what makes exact equality safe
in CI.
"""

import json
import os

import pytest

from repro.backends import BACKEND_NAMES, get_backend
from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.hooi.sthosvd import sthosvd
from repro.session import TuckerSession
from repro.tensor.random import low_rank_tensor

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: the three canonical configurations: 3-D/4-D, every planner family.
CONFIGS = {
    "3d_optimal_dynamic_p4": {
        "dims": (12, 10, 8),
        "core": (4, 3, 3),
        "n_procs": 4,
        "tree": "optimal",
        "grid": "dynamic",
    },
    "3d_chain-k_static_p6": {
        "dims": (14, 9, 11),
        "core": (5, 3, 4),
        "n_procs": 6,
        "tree": "chain-k",
        "grid": "static",
    },
    "4d_balanced_dynamic_p8": {
        "dims": (9, 8, 7, 6),
        "core": (3, 3, 2, 2),
        "n_procs": 8,
        "tree": "balanced",
        "grid": "dynamic",
    },
}

#: pool size for the worker-pool backends (any value: volumes are zero).
POOL_WORKERS = 3


def _backend_for(name: str, n_procs: int):
    if name in ("threaded", "procpool"):
        return get_backend(name, n_procs=POOL_WORKERS)
    return get_backend(name, n_procs=n_procs)


def build_record(config: dict) -> dict:
    """Plan + execute one HOOI invocation per backend; collect the ledger.

    Only shape-determined quantities are recorded (volumes, FLOPs), never
    seconds — the record is bit-stable across machines.
    """
    dims, core = config["dims"], config["core"]
    meta = TensorMeta(dims=dims, core=core)
    plan = Planner(
        config["n_procs"], tree=config["tree"], grid=config["grid"]
    ).plan(meta)
    record = {
        "config": {
            "dims": list(dims),
            "core": list(core),
            "n_procs": config["n_procs"],
            "tree": config["tree"],
            "grid": config["grid"],
        },
        "plan": {
            "flops": plan.flops,
            "ttm_volume": plan.ttm_volume,
            "regrid_volume": plan.regrid_volume,
            "total_volume": plan.total_volume,
            "core_ttm_volume": plan.core_ttm_volume,
            "core_regrid_volume": plan.core_regrid_volume,
            "initial_grid": list(plan.initial_grid),
        },
    }

    t = low_rank_tensor(dims, core, noise=0.1, seed=0)
    init = sthosvd(t, core, mode_order="optimal")
    comm: dict = {}
    flops: dict = {}
    for name in BACKEND_NAMES:
        backend = _backend_for(name, config["n_procs"])
        session = TuckerSession(backend=backend)
        session.hooi(t, init, plan=plan, max_iters=1, tol=0.0)
        ledger = backend.ledger
        comm[name] = {
            "total": ledger.volume(),
            "reduce_scatter": ledger.volume(op="reduce_scatter"),
            "alltoallv": ledger.volume(op="alltoallv"),
            "allgather": ledger.volume(op="allgather"),
            "allreduce": ledger.volume(op="allreduce"),
            "ttm_reduce_scatter": ledger.volume(
                op="reduce_scatter", tag_prefix="hooi:it0:ttm"
            ),
            "regrid_alltoallv": ledger.volume(
                op="alltoallv", tag_prefix="hooi:it0:regrid"
            ),
        }
        flops[name] = ledger.flops()
        backend.close()
    record["invocation"] = {"comm": comm, "flops": flops}
    # Normalize through JSON so tuples/ints compare cleanly with the file.
    return json.loads(json.dumps(record))


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def load_golden(name: str) -> dict:
    with open(golden_path(name), encoding="utf-8") as fh:
        return json.load(fh)


class TestGoldenLedger:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_record_matches_golden_bit_for_bit(self, name):
        assert build_record(CONFIGS[name]) == load_golden(name)

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_ttm_reduce_scatter_matches_paper_formula(self, name):
        # Engine-executed TTM volume is exactly the plan's closed-form
        # sum of (q_n - 1)|Out(u)| charges.
        golden = load_golden(name)
        executed = golden["invocation"]["comm"]["simcluster"]
        assert executed["ttm_reduce_scatter"] == golden["plan"]["ttm_volume"]

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_regrid_never_exceeds_model_charge(self, name):
        # The model charges a full |X| per move; the engine's alltoallv
        # counts only owner-moved elements and can never exceed it.
        golden = load_golden(name)
        executed = golden["invocation"]["comm"]["simcluster"]
        assert executed["regrid_alltoallv"] <= golden["plan"]["regrid_volume"]

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_shared_memory_backends_move_nothing(self, name):
        golden = load_golden(name)
        for backend in ("sequential", "threaded", "procpool"):
            assert golden["invocation"]["comm"][backend]["total"] == 0

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_shared_memory_flops_agree_exactly(self, name):
        # One schedule, one FLOP count: the pool backends must charge
        # exactly what the sequential reference charges.
        flops = load_golden(name)["invocation"]["flops"]
        assert flops["threaded"] == flops["sequential"]
        assert flops["procpool"] == flops["sequential"]
        assert flops["sequential"] > 0


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, config in sorted(CONFIGS.items()):
        with open(golden_path(name), "w", encoding="utf-8") as fh:
            json.dump(build_record(config), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {golden_path(name)}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
