"""Property tests for the input-adaptive backend selector.

The selector is a pure function of ``(dims, core, n_procs, dtype,
available_cores, profile)``; hypothesis pins the three contract
properties the session relies on:

* the selection is always a *registered* backend (auto candidates are a
  subset of ``BACKEND_NAMES``);
* selection is stable — repeated calls with the same inputs return the
  same backend and the same scores;
* an explicit ``backend=`` override is always respected — an auto session
  never overrides an explicitly named backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    AUTO_CANDIDATES,
    BACKEND_NAMES,
    default_profile,
    load_profile,
    merge_profile,
    save_profile,
    select_backend,
)
from repro.backends.select import (
    calibrate,
    default_profile_path,
    estimate_seconds,
    profile_from_trace,
    select_storage,
    sweep_flops,
)
from repro.session import TuckerSession
from repro.tensor.random import low_rank_tensor

# (dims, core) pairs: 1..5 modes, every core dim <= its tensor dim.
shapes = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.tuples(
        st.tuples(*[st.integers(min_value=1, max_value=64)] * n),
        st.tuples(*[st.integers(min_value=1, max_value=64)] * n),
    ).map(lambda dc: (dc[0], tuple(min(k, d) for k, d in zip(dc[1], dc[0]))))
)

procs = st.one_of(st.none(), st.integers(min_value=1, max_value=64))
cores_avail = st.integers(min_value=1, max_value=128)
dtypes = st.sampled_from([None, np.float32, np.float64])


class TestSelectionProperties:
    @settings(max_examples=200, deadline=None)
    @given(shape=shapes, n_procs=procs, cores=cores_avail, dtype=dtypes)
    def test_selection_is_a_registered_backend(
        self, shape, n_procs, cores, dtype
    ):
        dims, core = shape
        sel = select_backend(
            dims, core, n_procs=n_procs, available_cores=cores, dtype=dtype
        )
        assert sel.backend in AUTO_CANDIDATES
        assert sel.backend in BACKEND_NAMES
        assert sel.n_procs >= 1
        if n_procs is not None:
            assert sel.n_procs == n_procs
        assert set(sel.scores) <= set(AUTO_CANDIDATES)
        assert all(s >= 0 for s in sel.scores.values())
        assert sel.reason

    @settings(max_examples=100, deadline=None)
    @given(shape=shapes, n_procs=procs, cores=cores_avail, dtype=dtypes)
    def test_selection_is_stable(self, shape, n_procs, cores, dtype):
        dims, core = shape
        first = select_backend(
            dims, core, n_procs=n_procs, available_cores=cores, dtype=dtype
        )
        second = select_backend(
            dims, core, n_procs=n_procs, available_cores=cores, dtype=dtype
        )
        assert first.backend == second.backend
        assert first.scores == second.scores
        assert first.reason == second.reason

    @settings(max_examples=100, deadline=None)
    @given(shape=shapes, n_procs=procs)
    def test_single_core_always_sequential(self, shape, n_procs):
        # With one core the parallel backends pay pure overhead: the
        # model must never pick them.
        dims, core = shape
        sel = select_backend(dims, core, n_procs=n_procs, available_cores=1)
        assert sel.backend == "sequential"

    @settings(max_examples=50, deadline=None)
    @given(shape=shapes, cores=cores_avail)
    def test_scores_cover_all_candidates(self, shape, cores):
        dims, core = shape
        sel = select_backend(dims, core, available_cores=cores)
        assert set(sel.scores) == set(AUTO_CANDIDATES)
        # The winner is the argmin of its own score table.
        assert sel.scores[sel.backend] == min(sel.scores.values())


class TestOverrideRespected:
    @pytest.mark.parametrize("name", ["sequential", "threaded", "procpool"])
    def test_explicit_backend_is_never_overridden(self, name):
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend=name, n_procs=2)
        res = session.run(t, (3, 3, 2), planner="optimal", n_procs=2,
                          max_iters=1)
        assert res.backend == name
        assert res.auto_selected is False
        assert res.selection_reason == ""

    def test_auto_records_choice_in_result(self):
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend="auto")
        res = session.run(t, (3, 3, 2), planner="optimal", max_iters=1)
        assert res.auto_selected is True
        assert res.backend in AUTO_CANDIDATES
        assert res.backend in res.selection_reason or res.selection_reason
        assert session.last_selection is not None
        assert session.last_selection.backend == res.backend

    def test_auto_matches_selector_verdict(self):
        profile = default_profile()
        dims, core = (10, 9, 8), (3, 3, 2)
        session = TuckerSession(backend="auto", n_procs=2,
                                calibration=profile)
        t = low_rank_tensor(dims, core, noise=0.1, seed=0)
        res = session.run(t, core, planner="optimal", max_iters=1)
        expected = select_backend(dims, core, n_procs=2, profile=profile)
        assert res.backend == expected.backend

    def test_auto_rejects_cluster_config(self):
        with pytest.raises(ValueError, match="auto"):
            TuckerSession(backend="auto", cluster=object())

    def test_calibration_only_for_auto(self):
        with pytest.raises(ValueError, match="calibration"):
            TuckerSession(backend="sequential", calibration={})


class TestRobustness:
    """Regressions from review: degraded hosts and partial inputs."""

    def test_partial_calibration_dict_merges_over_defaults(self):
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(
            backend="auto",
            calibration={"version": 1,
                         "backends": {"procpool": {"rate": 5e9}}},
        )
        res = session.run(t, (3, 3, 2), planner="optimal", max_iters=1)
        assert res.backend in AUTO_CANDIDATES

    def test_auto_falls_back_when_winner_unavailable(self, monkeypatch):
        import repro.session as session_mod
        from repro.backends import BackendUnavailableError

        real = session_mod.get_backend

        def flaky(spec, **kwargs):
            if spec == "sequential":
                raise BackendUnavailableError("no can do", backend=spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(session_mod, "get_backend", flaky)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend="auto")
        res = session.run(t, (3, 3, 2), planner="optimal", max_iters=1)
        assert res.backend != "sequential"
        assert res.backend in AUTO_CANDIDATES
        assert "fell back" in res.selection_reason

    def test_auto_raises_typed_error_when_nothing_available(self, monkeypatch):
        import repro.session as session_mod
        from repro.backends import BackendUnavailableError

        def nothing(spec, **kwargs):
            raise BackendUnavailableError("gone", backend=str(spec))

        monkeypatch.setattr(session_mod, "get_backend", nothing)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend="auto")
        with pytest.raises(BackendUnavailableError, match="no auto-eligible"):
            session.run(t, (3, 3, 2), planner="optimal", max_iters=1)

    def test_auto_rebuilds_pool_when_n_procs_changes(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        # Force threaded to win so the session actually builds pools.
        profile = default_profile()
        profile["backends"]["sequential"]["rate"] = 1.0
        profile["backends"]["procpool"]["rate"] = 1.0
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend="auto", calibration=profile)
        first = session.run(t, (3, 3, 2), planner="optimal", n_procs=2,
                            max_iters=1)
        assert first.backend == "threaded"
        assert session.backend.n_workers == 2
        second = session.run(t, (3, 3, 2), planner="optimal", n_procs=6,
                             max_iters=1)
        assert second.backend == "threaded"
        assert session.backend.n_workers == 6

    def test_calibrate_skips_unavailable_backend(self, monkeypatch):
        import repro.backends as backends_mod
        from repro.backends import BackendUnavailableError

        real = backends_mod.get_backend

        def flaky(spec, **kwargs):
            if spec == "procpool":
                raise BackendUnavailableError("no shm", backend=spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(backends_mod, "get_backend", flaky)
        profile = calibrate(dims=(12, 10, 8), core=(3, 3, 2), repeats=1)
        assert profile["calibrated"] is True
        # procpool keeps its default parameters and is honestly reported
        # as unmeasured; the rest were measured.
        assert "procpool" not in profile["measured"]
        assert "sequential" in profile["measured"]
        assert profile["backends"]["procpool"] == (
            default_profile()["backends"]["procpool"]
        )
        assert profile["backends"]["sequential"]["rate"] > 0

    def test_warm_backends_skip_startup_charge(self):
        # A session's cached pool has paid its spin-up; selection must
        # not keep charging it.
        dims, core = (64, 64, 64), (8, 8, 8)
        cold = select_backend(dims, core, n_procs=4, available_cores=8)
        warm = select_backend(dims, core, n_procs=4, available_cores=8,
                              warm=("procpool",))
        assert warm.scores["procpool"] < cold.scores["procpool"]
        assert warm.scores["threaded"] == cold.scores["threaded"]

    def test_session_rejects_unreadable_explicit_calibration(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            TuckerSession(
                backend="auto",
                calibration=str(tmp_path / "nope.json"),
            )

    def test_defaulted_procs_clamped_to_plannable(self):
        # An 8-core machine's natural pool size is 7 — a prime larger
        # than every core dim here, which admits no valid grid. A
        # *defaulted* count must be clamped, not crash the planner.
        from repro.backends import ThreadedBackend

        t = low_rank_tensor((10, 9, 8), (5, 4, 3), noise=0.1, seed=0)
        session = TuckerSession(backend=ThreadedBackend(n_workers=7))
        res = session.run(t, (5, 4, 3), planner="optimal", max_iters=1)
        assert res.plan.n_procs == 6  # largest feasible count <= 7

    def test_auto_with_unplannable_natural_procs(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        t = low_rank_tensor((10, 9, 8), (5, 4, 3), noise=0.1, seed=0)
        session = TuckerSession(backend="auto")
        res = session.run(t, (5, 4, 3), planner="optimal", max_iters=1)
        assert res.plan.n_procs <= 6
        session.close()

    def test_explicit_unplannable_procs_still_error(self):
        # An explicit request is honored, not silently clamped.
        t = low_rank_tensor((10, 9, 8), (5, 4, 3), noise=0.1, seed=0)
        session = TuckerSession(backend="sequential")
        with pytest.raises(ValueError, match="no valid grid"):
            session.run(t, (5, 4, 3), planner="optimal", n_procs=7,
                        max_iters=1)

    def test_superseded_pools_are_closed_not_leaked(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        profile = default_profile()
        profile["backends"]["sequential"]["rate"] = 1.0
        profile["backends"]["procpool"]["rate"] = 1.0
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        with TuckerSession(backend="auto", calibration=profile) as session:
            session.run(t, (3, 3, 2), planner="optimal", n_procs=2,
                        max_iters=1)
            old = session.backend
            assert old._pool is not None  # the 2-worker pool span up
            session.run(t, (3, 3, 2), planner="optimal", n_procs=6,
                        max_iters=1)
            # The 2-worker instance was evicted and its pool shut down;
            # exactly one threaded instance remains cached.
            assert old._pool is None
            assert list(session._backends) == [("threaded", 6)]
        assert session.backend._pool is None  # close() on exit

    def test_warm_discount_requires_matching_procs(self, monkeypatch):
        import repro.backends.select as select_mod

        monkeypatch.setattr(select_mod.os, "cpu_count", lambda: 8)
        profile = default_profile()
        profile["backends"]["sequential"]["rate"] = 1.0
        profile["backends"]["procpool"]["rate"] = 1.0
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        session = TuckerSession(backend="auto", calibration=profile)
        session.run(t, (3, 3, 2), planner="optimal", n_procs=2, max_iters=1)
        base = select_backend(
            (10, 9, 8), (3, 3, 2), n_procs=6, available_cores=8,
            profile=session._profile,
        )
        session.run(t, (3, 3, 2), planner="optimal", n_procs=6, max_iters=1)
        # The cached pool had 2 workers, the new run wants 6: no warm
        # discount applies, so the score matches a cold selection.
        assert session.last_selection.scores == base.scores
        session.close()

    @pytest.mark.parametrize("name", ["threaded", "procpool"])
    def test_numpy_integer_worker_counts_accepted(self, name):
        from repro.backends import get_backend

        backend = get_backend(name, n_procs=np.int64(2))
        assert backend.n_workers == 2
        backend.close()

    def test_profile_without_calibrated_key_loads_uncalibrated(self, tmp_path):
        import json as json_mod

        path = tmp_path / "p.json"
        path.write_text(json_mod.dumps({"version": 1, "backends": {}}))
        assert load_profile(str(path))["calibrated"] is False


class TestValidation:
    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError, match="dims"):
            select_backend((), ())

    def test_mode_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="modes"):
            select_backend((4, 4), (2,))

    def test_nonpositive_procs_rejected(self):
        with pytest.raises(ValueError, match="n_procs"):
            select_backend((4, 4), (2, 2), n_procs=0)

    def test_profile_without_candidates_rejected(self):
        with pytest.raises(ValueError, match="auto-eligible"):
            select_backend((4, 4), (2, 2), profile={"backends": {}})


class TestCostModel:
    def test_sweep_flops_monotone_in_size(self):
        small = sweep_flops((8, 8, 8), (2, 2, 2))
        large = sweep_flops((16, 16, 16), (2, 2, 2))
        assert large > small > 0

    def test_float32_estimated_faster(self):
        params = default_profile()["backends"]["sequential"]
        kwargs = dict(n_procs=1, available_cores=1)
        f64 = estimate_seconds(params, (32, 32, 32), (4, 4, 4),
                               dtype=np.float64, **kwargs)
        f32 = estimate_seconds(params, (32, 32, 32), (4, 4, 4),
                               dtype=np.float32, **kwargs)
        assert f32 < f64

    def test_large_tensor_prefers_parallel_when_cores_abound(self):
        sel = select_backend(
            (512, 512, 512), (32, 32, 32), n_procs=8, available_cores=16
        )
        assert sel.backend in ("threaded", "procpool")
        assert sel.scores[sel.backend] < sel.scores["sequential"]


class TestProfilePersistence:
    def test_round_trip_preserves_selection(self, tmp_path):
        profile = default_profile()
        profile["backends"]["threaded"]["rate"] = 123456789.0
        path = save_profile(profile, str(tmp_path / "p.json"))
        loaded = load_profile(path)
        assert loaded["backends"]["threaded"]["rate"] == 123456789.0
        a = select_backend((64, 64, 64), (8, 8, 8), available_cores=8,
                           profile=profile)
        b = select_backend((64, 64, 64), (8, 8, 8), available_cores=8,
                           profile=loaded)
        assert a.backend == b.backend

    def test_implicit_missing_profile_falls_back(self, monkeypatch, tmp_path):
        # The machine profile is optional: absent -> defaults, silently.
        monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path / "absent.json"))
        loaded = load_profile()
        assert loaded["backends"] == default_profile()["backends"]
        assert loaded["calibrated"] is False

    def test_explicit_missing_path_raises(self, tmp_path):
        # A *named* path that cannot be read at all is a caller error.
        with pytest.raises(ValueError, match="cannot read"):
            load_profile(str(tmp_path / "absent.json"))

    @pytest.mark.parametrize(
        "content",
        ["{not json", "", '{"version": 999, "backends": {}}', "[1, 2, 3]"],
        ids=["corrupt", "empty", "stale-version", "not-an-object"],
    )
    def test_corrupt_or_stale_content_warns_and_falls_back(
        self, tmp_path, content
    ):
        # Corrupt/stale *content* must degrade to the defaults with a
        # warning — never crash a run that was about to use the profile.
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.warns(RuntimeWarning, match="falling back"):
            loaded = load_profile(str(path))
        assert loaded["backends"] == default_profile()["backends"]
        assert loaded["calibrated"] is False

    def test_wrong_typed_values_warn_and_keep_defaults(self, tmp_path):
        import json as json_mod

        path = tmp_path / "mangled.json"
        path.write_text(json_mod.dumps({
            "version": 1,
            "backends": {
                "threaded": {"rate": "fast", "startup": None},
                "procpool": {"rate": 5e9},
                "sequential": "broken",
            },
            "measured": "junk",
        }))
        with pytest.warns(RuntimeWarning, match="invalid entries"):
            loaded = load_profile(str(path))
        defaults = default_profile()["backends"]
        # Bad keys keep their defaults, good keys still merge.
        assert loaded["backends"]["threaded"]["rate"] == defaults["threaded"]["rate"]
        assert loaded["backends"]["threaded"]["startup"] == defaults["threaded"]["startup"]
        assert loaded["backends"]["sequential"] == defaults["sequential"]
        assert loaded["backends"]["procpool"]["rate"] == 5e9
        assert loaded["measured"] == []

    def test_nonfinite_values_rejected(self):
        with pytest.warns(RuntimeWarning, match="invalid entries"):
            merged = merge_profile(
                {"backends": {"threaded": {"rate": float("nan")}}}
            )
        assert merged["backends"]["threaded"]["rate"] == (
            default_profile()["backends"]["threaded"]["rate"]
        )

    def test_session_survives_corrupt_explicit_calibration(self, tmp_path):
        # End to end: a stale profile file named by the caller must not
        # take the session down mid-construction or mid-run.
        path = tmp_path / "stale.json"
        path.write_text('{"version": 999}')
        with pytest.warns(RuntimeWarning, match="falling back"):
            session = TuckerSession(backend="auto", calibration=str(path))
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=0)
        res = session.run(t, (3, 3, 2), planner="optimal", max_iters=1)
        assert res.backend in AUTO_CANDIDATES
        session.close()

    def test_implicit_corrupt_file_falls_back(self, monkeypatch, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        with pytest.warns(RuntimeWarning, match="falling back"):
            loaded = load_profile()
        assert loaded["backends"] == default_profile()["backends"]

    def test_env_var_controls_default_path(self, monkeypatch, tmp_path):
        target = str(tmp_path / "prof.json")
        monkeypatch.setenv("REPRO_CALIBRATION", target)
        assert default_profile_path() == target

    def test_calibrate_produces_loadable_profile(self, tmp_path):
        profile = calibrate(
            dims=(12, 10, 8), core=(3, 3, 2), repeats=1,
            backends=("sequential",),
        )
        assert profile["calibrated"] is True
        assert profile["backends"]["sequential"]["rate"] > 0
        path = save_profile(profile, str(tmp_path / "cal.json"))
        loaded = load_profile(path)
        assert loaded["calibrated"] is True
        sel = select_backend((12, 10, 8), (3, 3, 2), profile=loaded)
        assert sel.backend in AUTO_CANDIDATES


class TestSpilledCostModel:
    """The out-of-core regime: I/O charged, staging copies dropped."""

    def _params(self, **over):
        params = dict(default_profile()["backends"]["sequential"])
        params.update(over)
        return params

    def test_spilled_adds_io_charge(self):
        kw = dict(n_procs=1, dtype=np.float64, available_cores=1)
        resident = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), **kw
        )
        spilled = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), spilled=True, **kw
        )
        nbytes = 64 ** 3 * 8
        expected_io = nbytes / 8.0e8 + nbytes / 1.6e9
        assert spilled == pytest.approx(resident + expected_io)

    def test_spilled_drops_copy_charge(self):
        # A backend with a staging-copy cost loses it under spill: the
        # workers map the spill blocks in place.
        kw = dict(n_procs=1, dtype=np.float64, available_cores=1)
        slow_copy = self._params(copy_elems_per_s=1.0)  # absurdly slow
        resident = estimate_seconds(
            slow_copy, (32, 32, 32), (4, 4, 4), **kw
        )
        spilled = estimate_seconds(
            slow_copy, (32, 32, 32), (4, 4, 4), spilled=True, **kw
        )
        assert spilled < resident  # the huge copy charge is gone

    def test_storage_params_scale_the_io_term(self):
        kw = dict(n_procs=1, dtype=np.float64, available_cores=1)
        fast = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), spilled=True,
            storage_params={
                "spill_write_bytes_per_s": 1e12,
                "spill_read_bytes_per_s": 1e12,
            },
            **kw,
        )
        slow = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), spilled=True,
            storage_params={
                "spill_write_bytes_per_s": 1e6,
                "spill_read_bytes_per_s": 1e6,
            },
            **kw,
        )
        assert slow > fast

    def test_read_passes_multiply_read_charge(self):
        kw = dict(n_procs=1, dtype=np.float64, available_cores=1)
        one_pass = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), spilled=True,
            storage_params={"spill_read_passes": 1.0}, **kw,
        )
        three_pass = estimate_seconds(
            self._params(), (64, 64, 64), (8, 8, 8), spilled=True,
            storage_params={"spill_read_passes": 3.0}, **kw,
        )
        nbytes = 64 ** 3 * 8
        assert three_pass - one_pass == pytest.approx(
            2.0 * nbytes / 1.6e9
        )

    def test_select_backend_spilled_deterministic_and_flagged(self):
        a = select_backend(
            (48, 48, 48), (8, 8, 8), n_procs=4, available_cores=8,
            spilled=True,
        )
        b = select_backend(
            (48, 48, 48), (8, 8, 8), n_procs=4, available_cores=8,
            spilled=True,
        )
        assert a.backend == b.backend
        assert a.scores == b.scores
        assert "spilled" in a.reason
        resident = select_backend(
            (48, 48, 48), (8, 8, 8), n_procs=4, available_cores=8,
        )
        assert "spilled" not in resident.reason


class TestStorageProfileMerge:
    def test_storage_section_merges_over_defaults(self):
        profile = merge_profile(
            {"storage": {"spill_write_bytes_per_s": 5.0e9}}
        )
        assert profile["storage"]["spill_write_bytes_per_s"] == 5.0e9
        assert profile["storage"]["spill_read_bytes_per_s"] == 1.6e9

    def test_invalid_storage_values_keep_defaults_and_warn(self):
        with pytest.warns(RuntimeWarning, match="storage"):
            profile = merge_profile({
                "storage": {
                    "spill_write_bytes_per_s": -1.0,
                    "spill_read_bytes_per_s": "fast",
                },
            })
        assert profile["storage"] == default_profile()["storage"]

    def test_unknown_storage_keys_dropped(self):
        profile = merge_profile({"storage": {"warp_speed": 1.0}})
        assert "warp_speed" not in profile["storage"]


class TestProfileFromTrace:
    def _span(self, sid, name, kind, seconds, nbytes):
        from repro.obs.trace import Span

        return Span(
            sid=sid, name=name, kind=kind, start=0.0, end=seconds,
            attrs={"bytes": nbytes},
        )

    def test_io_spans_become_storage_rates(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._span(1, "spill:write", "io", 0.5, 5.0e8),
            self._span(2, "spill:write", "io", 0.5, 5.0e8),
            self._span(3, "spill:read", "io", 0.25, 5.0e8),
        ))
        partial = profile_from_trace(trace)
        assert partial["storage"]["spill_write_bytes_per_s"] == (
            pytest.approx(1.0e9)
        )
        assert partial["storage"]["spill_read_bytes_per_s"] == (
            pytest.approx(2.0e9)
        )
        merged = merge_profile(partial)
        assert merged["storage"]["spill_write_bytes_per_s"] == (
            pytest.approx(1.0e9)
        )

    def test_non_io_and_zero_byte_spans_ignored(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._span(1, "spill:write", "phase", 0.5, 1e9),  # wrong kind
            self._span(2, "spill:write", "io", 0.5, 0),       # no bytes
            self._span(3, "other:io", "io", 0.5, 1e9),        # wrong name
        ))
        assert profile_from_trace(trace) == {}

    def test_sub_microsecond_aggregates_discarded(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._span(1, "spill:read", "io", 5e-7, 4096),
        ))
        assert profile_from_trace(trace) == {}

    def test_empty_trace_is_empty_partial(self):
        from repro.obs.trace import Trace

        assert profile_from_trace(Trace(spans=())) == {}

    def test_real_spilled_run_yields_mergeable_profile(self, tmp_path):
        t = low_rank_tensor((16, 14, 12), (3, 3, 2), seed=5, noise=0.0)
        with TuckerSession(
            backend="sequential", trace=True,
            storage="mmap", spill_dir=str(tmp_path),
        ) as session:
            result = session.run(t, (3, 3, 2), max_iters=1)
        partial = profile_from_trace(result.trace)
        assert "spill_write_bytes_per_s" in partial.get("storage", {})
        merged = merge_profile(partial)
        sel = select_backend(
            (16, 14, 12), (3, 3, 2), profile=merged, spilled=True,
        )
        assert sel.backend in AUTO_CANDIDATES

    def _codec_span(self, sid, name, seconds, nbytes, **extra):
        from repro.obs.trace import Span

        return Span(
            sid=sid, name=name, kind="io", start=0.0, end=seconds,
            attrs={"bytes": nbytes, **extra},
        )

    def test_codec_write_spans_feed_encode_rate_and_ratio(self):
        from repro.obs.trace import Trace

        # 1e9 logical bytes encoded to 2e8 in 2s: encode rate is charged
        # over *logical* bytes (5e8/s), the ratio over encoded bytes.
        trace = Trace(spans=(
            self._codec_span(1, "spill:write", 2.0, 2.0e8,
                             codec="zlib:6", raw_bytes=1.0e9),
        ))
        storage = profile_from_trace(trace)["storage"]
        assert storage["zlib_encode_bytes_per_s"] == pytest.approx(5.0e8)
        assert storage["zlib_ratio"] == pytest.approx(0.2)
        # Encoded writes never masquerade as raw spill bandwidth.
        assert "spill_write_bytes_per_s" not in storage

    def test_codec_decode_spans_feed_decode_rate(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._codec_span(1, "spill:decode", 0.5, 1.0e9, codec="zlib:6"),
            self._codec_span(2, "spill:decode", 0.25, 1.0e9, codec="narrow"),
        ))
        storage = profile_from_trace(trace)["storage"]
        assert storage["zlib_decode_bytes_per_s"] == pytest.approx(2.0e9)
        assert storage["narrow_decode_bytes_per_s"] == pytest.approx(4.0e9)

    def test_codec_spans_and_raw_spans_learned_apart(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._codec_span(1, "spill:write", 0.5, 5.0e8),  # raw write
            self._codec_span(2, "spill:write", 1.0, 3.0e8,
                             codec="zlib:6", raw_bytes=6.0e8),
        ))
        storage = profile_from_trace(trace)["storage"]
        assert storage["spill_write_bytes_per_s"] == pytest.approx(1.0e9)
        assert storage["zlib_encode_bytes_per_s"] == pytest.approx(6.0e8)
        assert storage["zlib_ratio"] == pytest.approx(0.5)

    def test_unknown_codec_family_spans_dropped(self):
        from repro.obs.trace import Trace

        trace = Trace(spans=(
            self._codec_span(1, "spill:write", 1.0, 1e8,
                             codec="lz9", raw_bytes=1e9),
        ))
        assert profile_from_trace(trace) == {}


class TestCalibratedProcRanking:
    """With a calibrated profile, the cost model picks n_procs itself."""

    def _many_core_profile(self):
        profile = default_profile()
        profile["calibrated"] = True
        # Cripple sequential so a parallel backend wins outright.
        profile["backends"]["sequential"]["rate"] = 1.0
        return profile

    def test_calibrated_profile_ranks_beyond_cap8(self):
        sel = select_backend(
            (512, 512, 512), (32, 32, 32),
            available_cores=32, profile=self._many_core_profile(),
        )
        # Cap-8 is gone: the big tensor amortizes dispatch overhead, so
        # the ladder's widest rung (all-but-one core) models cheapest.
        assert sel.n_procs == 31
        assert "ranked cheapest of candidates" in sel.reason
        assert "calibrated profile" in sel.reason

    def test_uncalibrated_default_keeps_cap8_and_says_so(self):
        sel = select_backend(
            (512, 512, 512), (32, 32, 32), available_cores=32,
        )
        assert sel.n_procs == 8
        assert "clamped" in sel.reason
        assert "uncalibrated cap 8" in sel.reason
        assert "calibrate to rank candidates" in sel.reason

    def test_small_input_ranks_fewer_procs(self):
        # A tiny tensor's dispatch overhead dominates: the calibrated
        # ladder settles on a single process, below the cap-8 default.
        profile = self._many_core_profile()
        profile["backends"]["threaded"]["per_task"] = 1.0
        profile["backends"]["procpool"]["per_task"] = 1.0
        sel = select_backend(
            (4, 4, 4), (2, 2, 2), available_cores=32, profile=profile,
        )
        assert sel.n_procs == 1

    def test_explicit_procs_skip_the_ladder(self):
        sel = select_backend(
            (512, 512, 512), (32, 32, 32), n_procs=3,
            available_cores=32, profile=self._many_core_profile(),
        )
        assert sel.n_procs == 3
        assert "ranked cheapest" not in sel.reason

    def test_candidate_ladder_shape(self):
        from repro.backends.select import candidate_procs

        assert candidate_procs(1) == (1,)
        # 32 cores: 1, powers of two through 16, the cap-8 default (8,
        # already a power of two) and all-but-one.
        assert candidate_procs(32) == (1, 2, 4, 8, 16, 31)
        assert all(p <= 31 for p in candidate_procs(32))

    def test_clamp_note_absent_on_small_machines(self):
        # 4 usable cores sit under the cap: nothing was clamped, so the
        # reason must not claim otherwise.
        sel = select_backend((64, 64, 64), (8, 8, 8), available_cores=5)
        assert "clamped" not in sel.reason


class TestDtypeSpeedupClamp:
    def test_half_precision_not_modeled_faster_than_float32(self):
        # BLAS has no fast path below float32; a float16 input must not
        # be priced at a 4x speedup numpy cannot deliver.
        params = default_profile()["backends"]["sequential"]
        kw = dict(n_procs=1, available_cores=1)
        f32 = estimate_seconds(params, (32, 32, 32), (4, 4, 4),
                               dtype=np.float32, **kw)
        f16 = estimate_seconds(params, (32, 32, 32), (4, 4, 4),
                               dtype=np.float16, **kw)
        assert f16 == pytest.approx(f32)


class TestCodecSelection:
    """select_storage's codec half: explicit honored, auto is modeled."""

    def _calibrated(self, **storage):
        profile = default_profile()
        profile["calibrated"] = True
        profile["storage"].update(storage)
        return profile

    def test_explicit_codec_honored_even_uncalibrated(self):
        sel = select_storage(10**9, "mmap", codec="narrow")
        assert sel.codec == "narrow"
        assert "explicit" in sel.reason

    def test_explicit_zlib_level_normalized(self):
        sel = select_storage(10**9, "mmap", codec="zlib")
        assert sel.codec == "zlib:6"

    def test_auto_without_calibration_stays_raw(self):
        # The shipped storage defaults are placeholders: guessing a
        # codec from them could slow the run down.
        sel = select_storage(10**9, "mmap", codec="auto")
        assert sel.codec == "raw"
        assert sel.chunk_bytes is None

    def test_auto_calibrated_picks_zlib_on_compressible_data(self):
        profile = self._calibrated(
            zlib_encode_bytes_per_s=5.0e9,
            zlib_decode_bytes_per_s=5.0e9,
            zlib_ratio=0.2,
            spill_write_bytes_per_s=1.0e8,
        )
        sel = select_storage(10**9, "mmap", codec="auto", profile=profile)
        assert sel.codec == "zlib:6"
        assert "modeled cheapest" in sel.reason

    def test_auto_calibrated_picks_raw_on_incompressible_data(self):
        profile = self._calibrated(
            zlib_encode_bytes_per_s=1.0e8,
            zlib_ratio=0.999,
        )
        sel = select_storage(10**9, "mmap", codec="auto", profile=profile)
        assert sel.codec == "raw"

    def test_narrow_never_auto_selected(self):
        # Narrowing is lossy: even absurdly favorable measured rates
        # must not make "auto" choose it.
        profile = self._calibrated(
            narrow_encode_bytes_per_s=1.0e15,
            narrow_decode_bytes_per_s=1.0e15,
            zlib_encode_bytes_per_s=1.0,
            spill_write_bytes_per_s=1.0,
        )
        sel = select_storage(10**9, "mmap", codec="auto", profile=profile)
        assert sel.codec in ("raw", "zlib:6")

    def test_calibrated_chunk_size_rides_along(self):
        profile = self._calibrated(spill_chunk_bytes=2.0**20)
        sel = select_storage(10**9, "mmap", codec="auto", profile=profile)
        assert sel.chunk_bytes == 2**20

    def test_memory_mode_keeps_raw_codec(self):
        sel = select_storage(1024, "auto", memory_budget=10**9,
                             codec="zlib")
        assert sel.mode == "memory"
        assert sel.codec == "raw"

    def test_bad_codec_rejected_early(self):
        with pytest.raises(ValueError, match="codec"):
            select_storage(1024, "memory", codec="gzip")

    def test_auto_budget_spill_also_picks_codec(self):
        profile = self._calibrated(
            zlib_encode_bytes_per_s=5.0e9,
            zlib_decode_bytes_per_s=5.0e9,
            zlib_ratio=0.2,
            spill_write_bytes_per_s=1.0e8,
        )
        sel = select_storage(10**9, "auto", memory_budget=1024,
                             codec="auto", profile=profile)
        assert sel.spilled
        assert sel.codec == "zlib:6"


class TestSpillSecondsCodecs:
    def test_codecs_price_differently(self):
        from repro.backends.select import spill_seconds

        storage = default_profile()["storage"]
        nbytes = 1.0e9
        raw = spill_seconds(nbytes, "raw", storage)
        zl = spill_seconds(nbytes, "zlib:6", storage)
        na = spill_seconds(nbytes, "narrow", storage)
        assert raw > 0 and zl > 0 and na > 0
        # Default zlib rates are conservative: encode dominates.
        assert zl > raw
        # Narrow halves the written bytes at near-memcpy encode rates.
        expected_na = (
            nbytes / storage["narrow_encode_bytes_per_s"]
            + nbytes / 2.0 / storage["spill_write_bytes_per_s"]
            + nbytes / storage["narrow_decode_bytes_per_s"]
            + nbytes / storage["spill_read_bytes_per_s"]
        )
        assert na == pytest.approx(expected_na)


class TestCalibrateStorageProbe:
    def test_probe_measures_all_codec_rates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        profile = calibrate(
            backends=(), storage_probe=True, probe_bytes=1 << 16,
        )
        storage = profile["storage"]
        for key in (
            "spill_write_bytes_per_s", "spill_read_bytes_per_s",
            "zlib_encode_bytes_per_s", "zlib_decode_bytes_per_s",
            "narrow_encode_bytes_per_s", "narrow_decode_bytes_per_s",
        ):
            assert storage[key] > 0, key
        assert 0 < storage["zlib_ratio"] <= 1.5
        assert storage["spill_chunk_bytes"] >= 256 * 2**10
        # A storage-only probe still counts as calibrated: it armed the
        # codec/chunk choice with real numbers.
        assert profile["calibrated"] is True
        assert profile["measured"] == []
        # The probe cleans up after itself.
        assert list(tmp_path.iterdir()) == []

    def test_probe_off_leaves_defaults_uncalibrated(self):
        profile = calibrate(backends=(), storage_probe=False)
        assert profile["calibrated"] is False
        assert profile["storage"] == default_profile()["storage"]
