"""The backend-conformance harness.

One parametrized suite that holds *every registered backend* to the same
ExecutionBackend contract, instead of per-backend ad-hoc tests:

* **numerics** — the same compiled schedule must produce factors, cores
  and error sequences identical to the sequential reference to 1e-10,
  across a matrix of shapes and planners (and dtype preservation plus
  agreement at float32);
* **ledger tags** — executed ledger records must aggregate under exactly
  the schedule's step tags, uniformly across backends;
* **determinism** — repeated runs on fresh backend instances must be
  bit-for-bit identical.

Adding a backend means adding its name to ``BACKEND_NAMES``; this file
then enforces the whole contract on it automatically. A backend that is
genuinely unavailable on the host (e.g. no shared memory) is skipped via
its typed :class:`BackendUnavailableError`, never silently ignored.
"""

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    BackendUnavailableError,
    ExecutionBackend,
    get_backend,
)
from repro.core.meta import TensorMeta
from repro.session import TuckerSession
from repro.tensor.random import low_rank_tensor

#: (dims, core, n_procs) — 3-D and 4-D, uneven modes, seed per case.
SHAPES = [
    ((12, 10, 8), (4, 3, 3), 4),
    ((14, 9, 11), (5, 3, 4), 4),
    ((9, 8, 7, 6), (3, 3, 2, 2), 8),
]

PLANNERS = ["optimal", "chain-k"]

#: shared-memory pool size for the worker-pool backends (kept small so the
#: harness exercises multi-block paths without oversubscribing CI hosts).
POOL_WORKERS = 3


def make_backend(name: str, n_procs: int) -> ExecutionBackend:
    """A fresh backend sized for one conformance case."""
    try:
        if name in ("threaded", "procpool"):
            return get_backend(name, n_procs=POOL_WORKERS)
        return get_backend(name, n_procs=n_procs)
    except BackendUnavailableError as exc:  # pragma: no cover - host-specific
        pytest.skip(f"{name} unavailable here: {exc}")


def tensor_for(dims, core, seed, dtype=np.float64):
    t = low_rank_tensor(dims, core, noise=0.1, seed=seed)
    return t.astype(dtype, copy=False)


_REFERENCE_CACHE: dict = {}


def reference_run(dims, core, procs, planner, dtype=np.float64, seed=None):
    """The sequential result for a case (computed once per matrix cell)."""
    if seed is None:
        seed = sum(dims)
    key = (dims, core, procs, planner, np.dtype(dtype).name, seed)
    if key not in _REFERENCE_CACHE:
        session = TuckerSession(backend="sequential")
        _REFERENCE_CACHE[key] = session.run(
            tensor_for(dims, core, seed=seed, dtype=dtype),
            core,
            planner=planner,
            n_procs=procs,
            max_iters=3,
            tol=-np.inf,  # no early stop: iteration counts must match exactly
        )
    return _REFERENCE_CACHE[key]


def assert_same_decomposition(res, ref, atol, label):
    np.testing.assert_allclose(res.errors, ref.errors, atol=atol, err_msg=label)
    np.testing.assert_allclose(
        res.decomposition.core, ref.decomposition.core, atol=atol, err_msg=label
    )
    for mode, (a, b) in enumerate(
        zip(res.decomposition.factors, ref.decomposition.factors)
    ):
        np.testing.assert_allclose(
            a, b, atol=atol, err_msg=f"{label} factor {mode}"
        )


class TestNumericalConformance:
    """Every backend reproduces the sequential reference to 1e-10."""

    @pytest.mark.parametrize("planner", PLANNERS)
    @pytest.mark.parametrize("dims,core,procs", SHAPES)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_run_matches_sequential(self, name, dims, core, procs, planner):
        t = tensor_for(dims, core, seed=sum(dims))
        session = TuckerSession(backend=make_backend(name, procs))
        res = session.run(
            t, core, planner=planner, n_procs=procs, max_iters=3, tol=-np.inf
        )
        ref = reference_run(dims, core, procs, planner)
        assert res.backend == name
        assert_same_decomposition(res, ref, atol=1e-10, label=name)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_sthosvd_matches_sequential(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=1)
        session = TuckerSession(backend=make_backend(name, procs))
        res = session.sthosvd(t, core, planner="optimal", n_procs=procs)
        ref = TuckerSession(backend="sequential").sthosvd(
            t, core, planner="optimal", n_procs=procs
        )
        assert res.sthosvd_error == pytest.approx(
            ref.sthosvd_error, abs=1e-10
        )
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=1e-10
        )


class TestDtypeConformance:
    """float32 stays float32 on every backend and tracks the reference."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_float32_preserved_and_agrees(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=3, dtype=np.float32)
        session = TuckerSession(backend=make_backend(name, procs))
        res = session.run(
            t, core, planner="optimal", n_procs=procs, max_iters=3, tol=-np.inf
        )
        assert res.decomposition.core.dtype == np.float32
        for f in res.decomposition.factors:
            assert f.dtype == np.float32
        ref = reference_run(dims, core, procs, "optimal", dtype=np.float32, seed=3)
        # float32 reduction orders differ across backends; agreement is
        # held to a precision-appropriate tolerance, exactness to float64.
        np.testing.assert_allclose(res.errors, ref.errors, atol=1e-5)
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=5e-2
        )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_float64_default(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=4)
        session = TuckerSession(backend=make_backend(name, procs))
        res = session.run(t, core, planner="optimal", n_procs=procs, max_iters=1)
        assert res.decomposition.core.dtype == np.float64


class TestLedgerConformance:
    """Executed ledger records aggregate under the schedule's step tags."""

    @staticmethod
    def _hooi_once(name, dims, core, procs):
        from repro.hooi.sthosvd import sthosvd

        t = tensor_for(dims, core, seed=6)
        init = sthosvd(t, core, mode_order="optimal")
        backend = make_backend(name, procs)
        session = TuckerSession(backend=backend)
        compiled = session.compile(
            TensorMeta(dims=dims, core=core), n_procs=procs, planner="optimal"
        )
        session.hooi(
            t, init, plan=compiled, n_procs=procs, max_iters=1, tol=-np.inf
        )
        return backend, compiled

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_step_tags_cover_ledger(self, name):
        dims, core, procs = SHAPES[0]
        backend, compiled = self._hooi_once(name, dims, core, procs)
        expected = {
            f"hooi:it0:{step.tag}"
            for step in compiled.tree_steps
            if step.op in ("ttm", "svd", "regrid")
        } | {
            f"hooi:it0:core:{step.tag}"
            for step in compiled.core_steps
            if step.op in ("ttm", "regrid")
        }
        # Regrids are identity (and unrecorded) on shared memory; only the
        # ttm/svd steps must leave records on *every* backend.
        kernel_tags = {
            f"hooi:it0:{step.tag}"
            for step in compiled.tree_steps
            if step.op in ("ttm", "svd")
        } | {
            f"hooi:it0:core:{step.tag}"
            for step in compiled.core_steps
            if step.op == "ttm"
        }
        records = backend.ledger.records
        assert records, name
        for record in records:
            if record.tag.startswith("norm"):
                continue
            assert any(
                record.tag == tag or record.tag.startswith(tag + ":")
                for tag in expected
            ), f"{name}: stray ledger tag {record.tag!r}"
        # Every ttm/svd step of the schedule left at least one record.
        seen = {
            tag
            for tag in kernel_tags
            for record in records
            if record.tag == tag or record.tag.startswith(tag + ":")
        }
        assert seen == kernel_tags, f"{name}: unexecuted steps {kernel_tags - seen}"

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_stats_surface_uniform(self, name):
        dims, core, procs = SHAPES[0]
        backend, _ = self._hooi_once(name, dims, core, procs)
        stats = backend.stats()
        assert set(stats) == {
            "comm_volume",
            "flops",
            "comm_seconds",
            "compute_seconds",
            "events",
        }
        assert stats["flops"] > 0
        if name == "simcluster":
            assert stats["comm_volume"] > 0
        else:
            assert stats["comm_volume"] == 0  # one address space, honest ledger


class TestStorageConformance:
    """The storage axis: every backend x memory/mmap stores.

    A spilled run (``storage="mmap"`` with a budget that forces
    multi-block out-of-core kernels) must agree with the in-memory
    sequential reference to 1e-10, produce the *identical step-tag
    ledger* as its own in-memory run, and leave its spill directory
    empty afterward.
    """

    STORAGES = ["memory", "mmap"]

    @staticmethod
    def _run(name, storage, procs, dims, core, spill_dir):
        t = tensor_for(dims, core, seed=sum(dims))
        session = TuckerSession(
            backend=make_backend(name, procs),
            storage=storage,
            # small enough that every conformance shape cuts multiple
            # blocks per kernel when spilled
            memory_budget="16K",
            spill_dir=spill_dir,
        )
        try:
            return session.run(
                t, core, planner="optimal", n_procs=procs, max_iters=3,
                tol=-np.inf,
            )
        finally:
            session.close()

    @pytest.mark.parametrize("storage", STORAGES)
    @pytest.mark.parametrize("dims,core,procs", SHAPES)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_matches_in_memory_sequential(
        self, name, dims, core, procs, storage, tmp_path
    ):
        res = self._run(name, storage, procs, dims, core, str(tmp_path))
        ref = reference_run(dims, core, procs, "optimal")
        assert res.storage == storage
        assert_same_decomposition(
            res, ref, atol=1e-10, label=f"{name}/{storage}"
        )
        # no orphaned spill files once the run returned
        assert list(tmp_path.iterdir()) == [], f"{name}/{storage}"

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_step_tag_ledgers_identical_across_storage(self, name, tmp_path):
        dims, core, procs = SHAPES[0]
        tags = {}
        for storage in self.STORAGES:
            res = self._run(
                name, storage, procs, dims, core, str(tmp_path / storage)
            )
            tags[storage] = [
                (r.category, r.op, r.tag) for r in res.ledger.records
            ]
        assert tags["memory"] == tags["mmap"], name

    #: the codec dimension of the storage axis: raw and zlib must stay
    #: bit-exact vs the resident reference; narrow is lossy by contract
    #: and must stay within its *recorded* per-block bound.
    CODECS = ["raw", "zlib", "narrow"]

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_codec_matches_in_memory_sequential(self, name, codec, tmp_path):
        from repro.storage import resident_gauge

        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=sum(dims))
        gauge = resident_gauge()
        gauge.reset()
        budget = 16 * 1024
        session = TuckerSession(
            backend=make_backend(name, procs),
            storage="mmap",
            memory_budget=budget,
            spill_dir=str(tmp_path),
            spill_codec=codec,
        )
        try:
            res = session.run(
                t, core, planner="optimal", n_procs=procs, max_iters=3,
                tol=-np.inf,
            )
        finally:
            session.close()
        ref = reference_run(dims, core, procs, "optimal")
        label = f"{name}/{codec}"
        assert res.storage == "mmap", label
        assert res.spill_codec == ("zlib:6" if codec == "zlib" else codec)
        assert res.spill_bytes_logical > 0, label
        if codec == "narrow" and name != "simcluster":
            # float32 narrowing: the recorded bound is small but nonzero,
            # the stored bytes are half the logical bytes, and the
            # decomposition stays within float32 round-off accumulation.
            assert 0 < res.spill_error_bound < 1e-5, label
            assert res.spill_bytes_written < res.spill_bytes_logical, label
            assert_same_decomposition(res, ref, atol=1e-4, label=label)
        elif codec == "narrow":
            # simcluster spills only its per-rank bricks, and those are
            # mutable working state — always stored raw, so a narrow
            # session stays lossless there by contract.
            assert res.spill_error_bound == 0.0, label
            assert res.spill_bytes_written == res.spill_bytes_logical, label
            assert_same_decomposition(res, ref, atol=1e-10, label=label)
        else:
            assert res.spill_error_bound == 0.0, label
            assert_same_decomposition(res, ref, atol=1e-10, label=label)
        # encode/decode lease through the gauge like every other block
        # path: the budget bound holds for encoded spills too
        assert 0 < gauge.peak <= budget, (label, gauge.peak)
        assert list(tmp_path.iterdir()) == [], label

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_float32_spilled_stays_float32(self, name, tmp_path):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=3, dtype=np.float32)
        session = TuckerSession(
            backend=make_backend(name, procs),
            storage="mmap",
            spill_dir=str(tmp_path),
        )
        res = session.run(
            t, core, planner="optimal", n_procs=procs, max_iters=1
        )
        session.close()
        assert res.decomposition.core.dtype == np.float32
        assert res.storage == "mmap"


class TestDeterminism:
    """Repeated runs on fresh backends are bit-for-bit identical."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_repeat_runs_bitwise_equal(self, name):
        dims, core, procs = SHAPES[1]
        t = tensor_for(dims, core, seed=9)
        runs = []
        for _ in range(2):
            session = TuckerSession(backend=make_backend(name, procs))
            runs.append(
                session.run(
                    t, core, planner="optimal", n_procs=procs, max_iters=2,
                    tol=-np.inf,
                )
            )
        assert runs[0].errors == runs[1].errors
        np.testing.assert_array_equal(
            runs[0].decomposition.core, runs[1].decomposition.core
        )
        for a, b in zip(
            runs[0].decomposition.factors, runs[1].decomposition.factors
        ):
            np.testing.assert_array_equal(a, b)


class TestUnavailableConfigs:
    """Incompatible configs raise the typed BackendUnavailableError."""

    def test_threaded_rejects_nonpositive_workers(self):
        with pytest.raises(BackendUnavailableError, match="worker count"):
            get_backend("threaded", n_procs=0)

    def test_procpool_rejects_nonpositive_workers(self):
        with pytest.raises(BackendUnavailableError, match="worker count"):
            get_backend("procpool", n_procs=-1)

    def test_simcluster_needs_cluster_or_procs(self):
        with pytest.raises(BackendUnavailableError, match="cluster"):
            get_backend("simcluster")

    def test_simcluster_rejects_foreign_grid(self):
        backend = make_backend("simcluster", 4)
        t = tensor_for((8, 6, 4), (2, 2, 2), seed=0)
        with pytest.raises(BackendUnavailableError, match="grid"):
            backend.distribute(t, (3, 1, 1))
        exc = None
        try:
            backend.distribute(t, (3, 1, 1))
        except BackendUnavailableError as e:
            exc = e
        assert exc.backend == "simcluster"
        assert exc.config["grid"] == (3, 1, 1)
        assert exc.config["n_procs"] == 4

    def test_session_surfaces_cluster_mismatch_with_config(self):
        session = TuckerSession(backend="simcluster", n_procs=4)
        t = tensor_for((10, 9, 8), (3, 3, 2), seed=0)
        with pytest.raises(BackendUnavailableError, match="ranks") as info:
            session.run(t, (3, 3, 2), planner="optimal", n_procs=8)
        assert info.value.config["requested_n_procs"] == 8
        assert info.value.config["cluster_n_procs"] == 4
        assert info.value.config["dims"] == (10, 9, 8)

    def test_typed_error_is_still_a_value_error(self):
        # Compatibility contract: except ValueError keeps catching it.
        assert issubclass(BackendUnavailableError, ValueError)


class TestTracingConformance:
    """The observability layer holds uniformly across backends.

    Traced runs must mirror the ledger exactly (every ledger tag appears
    as a ``kind="step"`` span and vice versa) with a well-formed span
    tree; disabled tracing must leave no observer or tracer attached to
    the backend afterwards and no trace on the result.
    """

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_step_span_tags_equal_ledger_tags(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=11)
        session = TuckerSession(backend=make_backend(name, procs), trace=True)
        res = session.run(
            t, core, planner="optimal", n_procs=procs, max_iters=2,
            tol=-np.inf,
        )
        trace = res.trace
        assert trace is not None
        trace.validate()
        assert trace.step_tags() == {r.tag for r in res.ledger.records}, name
        # Per-tag multiplicity must match too, not just the set.
        from collections import Counter

        span_counts = Counter(
            s.name for s in trace.spans if s.kind == "step"
        )
        ledger_counts = Counter(r.tag for r in res.ledger.records)
        assert span_counts == ledger_counts, name

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_trace_nesting_and_meta(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=11)
        session = TuckerSession(backend=make_backend(name, procs), trace=True)
        res = session.run(
            t, core, planner="optimal", n_procs=procs, max_iters=1
        )
        trace = res.trace
        roots = trace.roots()
        assert [r.name for r in roots] == ["run"]
        phases = {s.name for s in trace.children(roots[0])}
        assert "compile" in phases
        assert "hooi" in phases
        assert "sthosvd" in phases
        assert trace.meta["backend"] == name
        assert trace.meta["dims"] == list(dims)
        assert trace.meta["metrics"]["counters"]["runs"] == 1.0
        assert res.seconds == pytest.approx(roots[0].seconds)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_disabled_tracing_detaches_cleanly(self, name):
        from repro.obs.trace import NULL_TRACER

        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=11)
        backend = make_backend(name, procs)
        session = TuckerSession(backend=backend)
        res = session.run(
            t, core, planner="optimal", n_procs=procs, max_iters=1
        )
        assert res.trace is None
        assert res.seconds > 0
        assert backend.tracer is NULL_TRACER
        assert backend.ledger.observer is None
        # The session tracer buffer must not accumulate across runs.
        session.run(t, core, planner="optimal", n_procs=procs, max_iters=1)
        assert session.tracer.mark() == 0

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_observer_restored_after_crash(self, name):
        dims, core, procs = SHAPES[0]
        backend = make_backend(name, procs)
        session = TuckerSession(backend=backend, trace=True)
        bad = tensor_for(dims, core, seed=11)
        with pytest.raises(ValueError):
            session.run(bad, (999, 3, 3), n_procs=procs)
        assert backend.ledger.observer is None
        # The failed attempt's partial spans are preserved for forensics.
        assert session.last_error_trace is not None


class TestRandomizedConformance:
    """The randomized methods' conformance axis: error bound, not bits.

    Sketch reductions run in backend-specific orders (simcluster's
    allreduce vs. the in-process ascending-block sums), and the Gram+EVD
    factor extraction amplifies those last-ulp differences — so unlike
    the exact path, cross-backend bitwise agreement is not part of the
    randomized contract. What *is*: per-backend seed determinism, and a
    reconstruction error within a constant factor of the exact STHOSVD
    error on every backend. The in-process backends contract identical
    host-drawn Gaussians over the same block discipline and must still
    agree closely with sequential.
    """

    METHODS = ("rsthosvd", "sp-rsthosvd")

    #: (1 + eps) per method. Single-pass pays a known accuracy tax: the
    #: core is solved from sketches (power iterations can't help it), so
    #: its eps is looser than the range-finder's.
    BOUND = {"rsthosvd": 1.5, "sp-rsthosvd": 2.0}

    @staticmethod
    def _true_error(arr, dec):
        from repro.tensor.ttm import ttm_chain

        recon = ttm_chain(dec.core, list(dec.factors), list(range(arr.ndim)))
        diff = recon - np.asarray(arr, dtype=recon.dtype)
        return float(
            np.linalg.norm(diff.reshape(-1))
            / np.linalg.norm(np.asarray(arr).reshape(-1))
        )

    def _run(self, name, method, dims, core, procs, seed=13):
        t = tensor_for(dims, core, seed=sum(dims))
        session = TuckerSession(backend=make_backend(name, procs))
        try:
            return t, session.run(
                t, core, planner="optimal", n_procs=procs, method=method,
                seed=seed, power_iters=1, skip_hooi=True,
            )
        finally:
            session.close()

    @pytest.mark.parametrize("dims,core,procs", SHAPES)
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_error_within_bound_of_exact(self, name, method, dims, core,
                                         procs):
        t, res = self._run(name, method, dims, core, procs)
        exact = TuckerSession(backend="sequential").run(
            t, core, planner="optimal", n_procs=procs, skip_hooi=True
        )
        bound = self.BOUND[method] * max(exact.sthosvd_error, 1e-12)
        actual = self._true_error(t, res.decomposition)
        assert actual <= bound, (
            f"{name}/{method}: true error {actual} exceeds "
            f"(1+eps) x exact {exact.sthosvd_error}"
        )

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_repeat_runs_are_bitwise(self, name, method):
        dims, core, procs = SHAPES[0]
        _, a = self._run(name, method, dims, core, procs)
        _, b = self._run(name, method, dims, core, procs)
        np.testing.assert_array_equal(
            a.decomposition.core, b.decomposition.core, err_msg=name
        )
        for mode, (fa, fb) in enumerate(
            zip(a.decomposition.factors, b.decomposition.factors)
        ):
            np.testing.assert_array_equal(
                fa, fb, err_msg=f"{name} factor {mode}"
            )

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("name", ["threaded", "procpool"])
    def test_in_process_pools_match_sequential(self, name, method):
        dims, core, procs = SHAPES[0]
        _, res = self._run(name, method, dims, core, procs)
        _, ref = self._run("sequential", method, dims, core, procs)
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=1e-8,
            err_msg=name,
        )
        for mode, (a, b) in enumerate(
            zip(res.decomposition.factors, ref.decomposition.factors)
        ):
            np.testing.assert_allclose(
                a, b, atol=1e-8, err_msg=f"{name} factor {mode}"
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_randomized_phase_is_traced(self, name):
        dims, core, procs = SHAPES[0]
        t = tensor_for(dims, core, seed=sum(dims))
        session = TuckerSession(backend=make_backend(name, procs), trace=True)
        try:
            res = session.run(
                t, core, planner="optimal", n_procs=procs,
                method="rsthosvd", seed=13, skip_hooi=True,
            )
        finally:
            session.close()
        roots = res.trace.roots()
        assert res.trace.meta["algorithm"] == "rsthosvd"
        phases = {s.name for s in res.trace.children(roots[0])}
        assert "rsthosvd" in phases and "sthosvd" not in phases
