"""Tests for block-distributed tensors."""

import numpy as np
import pytest

from repro.dist.dtensor import DistTensor
from repro.mpi.comm import SimCluster


class TestDistribution:
    def test_roundtrip(self):
        c = SimCluster(8)
        t = np.random.default_rng(0).standard_normal((8, 6, 4))
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        np.testing.assert_array_equal(dt.to_global(), t)

    def test_block_shapes_near_even(self):
        c = SimCluster(4)
        t = np.zeros((10, 6))
        dt = DistTensor.from_global(c, t, (4, 1))
        shapes = [dt.block_shape(r) for r in range(4)]
        assert shapes == [(3, 6), (3, 6), (2, 6), (2, 6)]

    def test_uneven_roundtrip(self):
        c = SimCluster(6)
        t = np.random.default_rng(1).standard_normal((7, 5, 3))
        dt = DistTensor.from_global(c, t, (3, 2, 1))
        np.testing.assert_array_equal(dt.to_global(), t)

    def test_grid_larger_than_mode_rejected(self):
        c = SimCluster(8)
        with pytest.raises(ValueError, match="parts|empty blocks"):
            DistTensor.from_global(c, np.zeros((2, 3)), (4, 2))

    def test_block_consistency_checked(self):
        c = SimCluster(2)
        from repro.dist.grid_comm import ProcessorGrid

        grid = ProcessorGrid(c, (2, 1))
        blocks = {0: np.zeros((2, 4)), 1: np.zeros((3, 4))}  # wrong split of 4
        with pytest.raises(ValueError, match="shape"):
            DistTensor(grid, (4, 4), blocks)

    def test_missing_rank_rejected(self):
        c = SimCluster(2)
        from repro.dist.grid_comm import ProcessorGrid

        grid = ProcessorGrid(c, (2, 1))
        with pytest.raises(ValueError, match="cover"):
            DistTensor(grid, (4, 4), {0: np.zeros((2, 4))})


class TestNorm:
    def test_matches_numpy(self):
        c = SimCluster(4)
        t = np.random.default_rng(2).standard_normal((6, 8))
        dt = DistTensor.from_global(c, t, (2, 2))
        assert dt.fro_norm_sq() == pytest.approx(np.sum(t * t), rel=1e-12)

    def test_records_allreduce(self):
        c = SimCluster(4)
        dt = DistTensor.from_global(c, np.ones((4, 4)), (2, 2))
        dt.fro_norm_sq(tag="norm:test")
        assert c.stats.volume(op="allreduce", tag_prefix="norm") > 0
