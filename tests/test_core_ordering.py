"""Tests for mode-ordering heuristics."""

from itertools import permutations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.cost import tree_cost
from repro.core.meta import TensorMeta
from repro.core.ordering import (
    h_ordering,
    k_ordering,
    natural_ordering,
    optimal_chain_ordering,
)
from repro.core.trees import chain_tree


class TestHeuristicOrderings:
    def test_k_ordering_sorts_by_core(self):
        m = TensorMeta(dims=(100, 100, 100), core=(30, 10, 20))
        assert k_ordering(m) == [1, 2, 0]

    def test_h_ordering_sorts_by_ratio(self):
        # h = 0.5, 0.1, 0.9
        m = TensorMeta(dims=(10, 100, 10), core=(5, 10, 9))
        assert h_ordering(m) == [1, 0, 2]

    def test_h_ordering_exact_ties_break_by_index(self):
        m = TensorMeta(dims=(400, 20), core=(200, 10))  # both h = 1/2
        assert h_ordering(m) == [0, 1]

    def test_natural(self):
        m = TensorMeta(dims=(4, 4, 4), core=(2, 2, 2))
        assert natural_ordering(m) == [0, 1, 2]

    def test_k_and_h_can_disagree(self):
        # K-order: by (2, 90) -> [0, 1]; h: 2/100 vs 90/100... same; pick
        # dims so they differ: K = (10, 20), h = (10/20=0.5, 20/100=0.2)
        m = TensorMeta(dims=(20, 100), core=(10, 20))
        assert k_ordering(m) == [0, 1]
        assert h_ordering(m) == [1, 0]


class TestOptimalChainOrdering:
    def chain_flops(self, m: TensorMeta, order: list[int]) -> int:
        card = m.cardinality
        total = 0
        for mode in order:
            total += m.core[mode] * card
            card = card * m.core[mode] // m.dims[mode]
        return total

    @given(st.integers(min_value=0, max_value=499))
    def test_beats_every_permutation(self, seed):
        import random

        r = random.Random(seed)
        dims = tuple(r.choice([6, 10, 15, 30]) for _ in range(4))
        core = tuple(max(1, d // r.choice([1, 2, 3, 5])) for d in dims)
        m = TensorMeta(dims=dims, core=core)
        best = self.chain_flops(m, optimal_chain_ordering(m))
        for perm in permutations(range(4)):
            assert best <= self.chain_flops(m, list(perm))

    def test_subset_ordering(self):
        m = TensorMeta(dims=(10, 20, 30), core=(5, 2, 3))
        sub = optimal_chain_ordering(m, modes=[0, 2])
        assert sorted(sub) == [0, 2]

    def test_full_chain_matches_chain_tree_single_branch(self):
        # chain_tree cost with the optimal ordering never beats the exact
        # optimal ordering of a single chain computed directly
        m = TensorMeta(dims=(12, 30, 8), core=(3, 5, 4))
        order = optimal_chain_ordering(m)
        assert self.chain_flops(m, order) <= min(
            self.chain_flops(m, list(p)) for p in permutations(range(3))
        )

    def test_orderings_affect_chain_tree_cost(self):
        m = TensorMeta(dims=(400, 20, 100), core=(4, 16, 10))
        ck = tree_cost(chain_tree(3, k_ordering(m)), m)
        cn = tree_cost(chain_tree(3, natural_ordering(m)), m)
        # K-ordering is a real heuristic: on this instance it helps
        assert ck <= cn
