"""Tests for TensorMeta."""

from fractions import Fraction

import pytest

from repro.core.meta import TensorMeta


class TestConstruction:
    def test_basic(self):
        m = TensorMeta(dims=(10, 20), core=(2, 5))
        assert m.ndim == 2
        assert m.cardinality == 200
        assert m.core_cardinality == 10

    def test_rejects_core_larger_than_dims(self):
        with pytest.raises(ValueError):
            TensorMeta(dims=(10, 20), core=(11, 5))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            TensorMeta(dims=(10, 20), core=(2,))

    def test_core_equal_dims_allowed(self):
        m = TensorMeta(dims=(4, 4), core=(4, 4))
        assert m.h(0) == 1


class TestFactors:
    def test_h_is_exact_fraction(self):
        m = TensorMeta(dims=(400,), core=(320,))
        assert m.h(0) == Fraction(4, 5)

    def test_compression_ratio(self):
        m = TensorMeta(dims=(100, 100), core=(10, 10))
        stored = 100 + 2 * 1000
        assert m.compression_ratio == pytest.approx(10000 / stored)


class TestCardAfter:
    def test_masks(self):
        m = TensorMeta(dims=(10, 20, 30), core=(2, 4, 6))
        assert m.card_after(0b000) == 6000
        assert m.card_after(0b001) == 2 * 20 * 30
        assert m.card_after(0b010) == 10 * 4 * 30
        assert m.card_after(0b111) == 2 * 4 * 6

    def test_shape_after(self):
        m = TensorMeta(dims=(10, 20, 30), core=(2, 4, 6))
        assert m.shape_after(0b101) == (2, 20, 6)

    def test_monotone_compression(self):
        m = TensorMeta(dims=(8, 9, 10), core=(2, 3, 4))
        full = (1 << 3) - 1
        for mask in range(full + 1):
            for n in range(3):
                if not (mask >> n) & 1:
                    assert m.card_after(mask | (1 << n)) <= m.card_after(mask)


class TestSerialization:
    def test_roundtrip(self):
        m = TensorMeta(dims=(5, 6, 7), core=(2, 3, 4))
        assert TensorMeta.from_dict(m.to_dict()) == m

    def test_str(self):
        assert str(TensorMeta(dims=(5, 6), core=(2, 3))) == "5x6 -> 2x3"
