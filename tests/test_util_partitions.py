"""Tests for repro.util.partitions: factorizations and mask iteration."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.partitions import (
    balanced_split,
    count_ordered_factorizations,
    divisors,
    iter_nonempty_proper_submasks,
    iter_submasks,
    multisets,
    ordered_factorizations,
    prime_factorization,
)


class TestPrimeFactorization:
    def test_small_known_values(self):
        assert prime_factorization(1) == {}
        assert prime_factorization(2) == {2: 1}
        assert prime_factorization(12) == {2: 2, 3: 1}
        assert prime_factorization(360) == {2: 3, 3: 2, 5: 1}
        assert prime_factorization(97) == {97: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factorization(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, n):
        factors = prime_factorization(n)
        assert math.prod(p**e for p, e in factors.items()) == n
        for p in factors:
            # each listed prime is actually prime
            assert all(p % d for d in range(2, int(p**0.5) + 1))


class TestDivisors:
    def test_known(self):
        assert divisors(1) == [1]
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(49) == [1, 7, 49]

    @given(st.integers(min_value=1, max_value=5000))
    def test_all_divide_and_sorted(self, n):
        ds = divisors(n)
        assert ds == sorted(ds)
        assert all(n % d == 0 for d in ds)
        assert len(set(ds)) == len(ds)
        # completeness
        assert ds == [d for d in range(1, n + 1) if n % d == 0]


class TestOrderedFactorizations:
    def test_table1_counts_power_of_two(self):
        # Table 1 of the paper (with the 462 typo corrected; see DESIGN.md).
        expect_p32 = {5: 126, 6: 252, 7: 462, 8: 792, 9: 1287, 10: 2002}
        for n, count in expect_p32.items():
            assert count_ordered_factorizations(32, n) == count
        expect_p1024 = {5: 1001, 6: 3003, 7: 8008, 8: 19448, 9: 43758, 10: 92378}
        for n, count in expect_p1024.items():
            assert count_ordered_factorizations(1024, n) == count

    def test_table1_counts_p_2_20(self):
        assert count_ordered_factorizations(2**20, 5) == 10626
        assert count_ordered_factorizations(2**20, 6) == 53130
        assert count_ordered_factorizations(2**20, 7) == 230230
        assert count_ordered_factorizations(2**20, 8) == 888030
        assert count_ordered_factorizations(2**20, 9) == 3108105
        assert count_ordered_factorizations(2**20, 10) == 10015005

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=4),
    )
    def test_enumeration_matches_closed_form(self, p, n):
        grids = list(ordered_factorizations(p, n))
        assert len(grids) == count_ordered_factorizations(p, n)
        assert len(set(grids)) == len(grids)
        for g in grids:
            assert len(g) == n
            assert math.prod(g) == p

    def test_composite_prime_base(self):
        # 360 = 2^3 3^2 5: psi = C(3+2,2) C(2+2,2) C(1+2,2) = 10*6*3
        assert count_ordered_factorizations(360, 3) == 180
        assert len(list(ordered_factorizations(360, 3))) == 180

    def test_single_factor(self):
        assert list(ordered_factorizations(7, 1)) == [(7,)]

    def test_p_equals_one(self):
        assert list(ordered_factorizations(1, 3)) == [(1, 1, 1)]


class TestSubmasks:
    def test_full_enumeration(self):
        subs = list(iter_submasks(0b101))
        assert sorted(subs) == [0b000, 0b001, 0b100, 0b101]

    def test_zero_mask(self):
        assert list(iter_submasks(0)) == [0]

    def test_proper_nonempty(self):
        subs = list(iter_nonempty_proper_submasks(0b111))
        assert sorted(subs) == [0b001, 0b010, 0b011, 0b100, 0b101, 0b110]

    @given(st.integers(min_value=0, max_value=2**10 - 1))
    def test_count_is_2_to_popcount(self, mask):
        assert len(list(iter_submasks(mask))) == 2 ** mask.bit_count()

    @given(st.integers(min_value=1, max_value=2**10 - 1))
    def test_proper_excludes_bounds(self, mask):
        subs = list(iter_nonempty_proper_submasks(mask))
        assert 0 not in subs
        assert mask not in subs
        assert len(subs) == 2 ** mask.bit_count() - 2


class TestMisc:
    def test_multisets_count(self):
        # C(4 + 3 - 1, 3) = 20
        assert len(list(multisets([1, 2, 3, 4], 3))) == 20

    def test_balanced_split_floor_half(self):
        assert balanced_split([1, 2, 3, 4, 5]) == ([1, 2], [3, 4, 5])
        assert balanced_split([1]) == ([], [1])
        assert balanced_split([1, 2]) == ([1], [2])
