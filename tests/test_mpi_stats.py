"""Tests for the stats ledger."""

import pytest

from repro.mpi.stats import Record, StatsLedger


class TestRecord:
    def test_valid(self):
        r = Record("comm", "reduce_scatter", "ttm:rs", 4, 100.0, 0.0, 1e-3)
        assert r.elements == 100.0

    def test_rejects_bad_category(self):
        with pytest.raises(ValueError):
            Record("network", "x", "t")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Record("comm", "x", "t", elements=-1)
        with pytest.raises(ValueError):
            Record("comm", "x", "t", group_size=0)


class TestLedger:
    def make(self) -> StatsLedger:
        s = StatsLedger()
        s.add_comm("reduce_scatter", "ttm:n1", 4, 100, 0.5)
        s.add_comm("alltoallv", "regrid:n2", 8, 40, 0.25)
        s.add_comm("allreduce", "svd:g", 8, 10, 0.05)
        s.add_compute("gemm", "ttm:gemm", 1000, 1.0)
        s.add_compute("evd", "svd:evd", 500, 2.0)
        return s

    def test_volume_filters(self):
        s = self.make()
        assert s.volume() == 150
        assert s.volume(op="reduce_scatter") == 100
        assert s.volume(tag_prefix="regrid") == 40
        assert s.volume(op="alltoallv", tag_prefix="ttm") == 0

    def test_flops_and_seconds(self):
        s = self.make()
        assert s.flops() == 1500
        assert s.flops(tag_prefix="svd") == 500
        assert s.comm_seconds() == pytest.approx(0.8)
        assert s.compute_seconds() == pytest.approx(3.0)
        assert s.total_seconds() == pytest.approx(3.8)
        assert s.total_seconds(tag_prefix="svd") == pytest.approx(2.05)

    def test_by_tag_prefix(self):
        s = self.make()
        agg = s.by_tag_prefix()
        assert set(agg) == {"ttm", "regrid", "svd"}
        assert agg["ttm"]["volume"] == 100
        assert agg["ttm"]["flops"] == 1000
        assert agg["svd"]["comm_seconds"] == pytest.approx(0.05)

    def test_merge_and_clear(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert len(a) == 10
        a.clear()
        assert len(a) == 0 and a.volume() == 0

    def test_records_immutable_view(self):
        s = self.make()
        assert isinstance(s.records, tuple)
        assert len(s.records) == 5
