"""Tests for unfolding/folding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor.unfold import fold, unfold

shapes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5)


class TestUnfold:
    def test_shape(self):
        t = np.zeros((3, 4, 5))
        assert unfold(t, 0).shape == (3, 20)
        assert unfold(t, 1).shape == (4, 15)
        assert unfold(t, 2).shape == (5, 12)

    def test_columns_are_fibers(self):
        # every column of the mode-n unfolding appears among the fibers
        rng = np.random.default_rng(0)
        t = rng.standard_normal((3, 4, 5))
        u = unfold(t, 1)
        fibers = {tuple(t[i, :, k]) for i in range(3) for k in range(5)}
        for j in range(u.shape[1]):
            assert tuple(u[:, j]) in fibers

    def test_mode0_is_plain_reshape(self):
        t = np.arange(24.0).reshape(2, 3, 4)
        np.testing.assert_array_equal(unfold(t, 0), t.reshape(2, 12))

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            unfold(np.zeros((2, 2)), 2)


class TestFold:
    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            fold(np.zeros((3, 21)), 0, (3, 4, 5))

    @given(shapes, st.integers(min_value=0, max_value=4), st.integers(0, 99))
    def test_roundtrip(self, dims, mode, seed):
        mode = mode % len(dims)
        t = np.random.default_rng(seed).standard_normal(tuple(dims))
        np.testing.assert_array_equal(fold(unfold(t, mode), mode, t.shape), t)

    @given(shapes, st.integers(min_value=0, max_value=4), st.integers(0, 99))
    def test_reverse_roundtrip(self, dims, mode, seed):
        mode = mode % len(dims)
        dims = tuple(dims)
        n_cols = int(np.prod(dims)) // dims[mode]
        m = np.random.default_rng(seed).standard_normal((dims[mode], n_cols))
        np.testing.assert_array_equal(unfold(fold(m, mode, dims), mode), m)
