"""The block-store contract: round-trips, corruption, cleanliness.

Property tests (hypothesis) pin the storage layer the same way the
dist-engine suite pins the collectives:

* **round-trips** — write block -> read block is *bit-identical* across
  dtypes, shapes and chunk sizes, on both store kinds;
* **typed corruption** — a truncated spill file, a mangled or missing
  manifest, an inconsistent shape/byte count all raise
  :class:`~repro.storage.CorruptBlockError` with a machine-checkable
  ``reason``, never silently wrong data;
* **no orphans** — a closed store leaves an empty spill location (the
  same discipline the procpool suite enforces for ``/dev/shm``), and
  dropped handles reclaim their blocks.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.blockpar import oc_block_slices
from repro.backends.select import STORAGE_MODES, select_storage
from repro.storage import (
    DEFAULT_ZLIB_LEVEL,
    CorruptBlockError,
    InMemoryStore,
    MmapStore,
    ResidentGauge,
    StorageError,
    StoredTensor,
    check_codec,
    parse_bytes,
)

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8]

shapes = st.lists(st.integers(1, 7), min_size=1, max_size=4).map(tuple)
chunk_sizes = st.sampled_from([1, 7, 64, 4096, 2**20])


def _array_for(shape, dtype, seed):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.floating):
        return rng.standard_normal(shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=shape, dtype=dtype)


# --------------------------------------------------------------------- #
# round-trips
# --------------------------------------------------------------------- #


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        shape=shapes,
        dtype=st.sampled_from(DTYPES),
        chunk=chunk_sizes,
        seed=st.integers(0, 2**16),
    )
    def test_mmap_round_trip_bit_identical(
        self, tmp_path_factory, shape, dtype, chunk, seed
    ):
        array = _array_for(shape, dtype, seed)
        with MmapStore(
            root=str(tmp_path_factory.mktemp("rt")), chunk_bytes=chunk
        ) as store:
            store.put("blk", array)
            back = store.get("blk")
            assert back.dtype == array.dtype
            assert tuple(back.shape) == tuple(array.shape)
            np.testing.assert_array_equal(np.asarray(back), array)
            # bit-identical, not just value-equal
            assert np.asarray(back).tobytes() == array.tobytes()
            assert store.meta_of("blk") == (tuple(array.shape), array.dtype)
            del back

    @settings(max_examples=30, deadline=None)
    @given(
        shape=shapes,
        dtype=st.sampled_from(DTYPES),
        seed=st.integers(0, 2**16),
    )
    def test_memory_round_trip_bit_identical(self, shape, dtype, seed):
        array = _array_for(shape, dtype, seed)
        with InMemoryStore() as store:
            store.put("blk", array)
            back = store.get("blk")
            assert back.tobytes() == array.tobytes()
            assert store.nbytes == array.nbytes

    def test_strided_source_round_trips(self, tmp_path):
        """A non-contiguous view (a brick of a bigger tensor) spills right."""
        base = _array_for((12, 10, 8), np.float64, 3)
        view = base[1:9, ::2, 3:]
        with MmapStore(root=str(tmp_path), chunk_bytes=128) as store:
            store.put("brick", view)
            np.testing.assert_array_equal(
                np.asarray(store.get("brick")), np.ascontiguousarray(view)
            )

    def test_writer_mutations_persist(self, tmp_path):
        with MmapStore(root=str(tmp_path)) as store:
            store.create("out", (4, 3), np.float64)
            w = store.writer("out")
            w[...] = 7.0
            w.flush()
            del w
            np.testing.assert_array_equal(
                np.asarray(store.get("out")), np.full((4, 3), 7.0)
            )


# --------------------------------------------------------------------- #
# typed corruption
# --------------------------------------------------------------------- #


class TestCorruption:
    def _store_with_block(self, tmp_path) -> MmapStore:
        store = MmapStore(root=str(tmp_path))
        store.put("x", np.arange(100, dtype=np.float64).reshape(10, 10))
        return store

    def test_truncated_data_file(self, tmp_path):
        store = self._store_with_block(tmp_path)
        with open(store.path_of("x"), "r+b") as fh:
            fh.truncate(13)
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "size-mismatch"
        assert info.value.key == "x"

    def test_grown_data_file(self, tmp_path):
        store = self._store_with_block(tmp_path)
        with open(store.path_of("x"), "ab") as fh:
            fh.write(b"\x00" * 8)
        with pytest.raises(CorruptBlockError, match="truncated or over"):
            store.get("x")

    def test_missing_data_file(self, tmp_path):
        store = self._store_with_block(tmp_path)
        os.remove(store.path_of("x"))
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "missing-data"

    def test_data_without_manifest_is_interrupted_spill(self, tmp_path):
        store = self._store_with_block(tmp_path)
        os.remove(os.path.join(store.directory, "x.json"))
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "missing-manifest"

    def test_mangled_manifest_json(self, tmp_path):
        store = self._store_with_block(tmp_path)
        with open(os.path.join(store.directory, "x.json"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "bad-manifest-json"

    def test_manifest_missing_fields(self, tmp_path):
        store = self._store_with_block(tmp_path)
        with open(os.path.join(store.directory, "x.json"), "w") as fh:
            json.dump({"version": 1, "key": "x"}, fh)
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "bad-manifest-fields"

    def test_manifest_wrong_version(self, tmp_path):
        store = self._store_with_block(tmp_path)
        path = os.path.join(store.directory, "x.json")
        with open(path) as fh:
            manifest = json.load(fh)
        manifest["version"] = 999
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "bad-manifest-version"

    def test_inconsistent_manifest_byte_count(self, tmp_path):
        store = self._store_with_block(tmp_path)
        path = os.path.join(store.directory, "x.json")
        with open(path) as fh:
            manifest = json.load(fh)
        manifest["nbytes"] = manifest["nbytes"] - 8
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(CorruptBlockError) as info:
            store.get("x")
        assert info.value.reason == "inconsistent-manifest"

    def test_corrupt_is_storage_error(self):
        assert issubclass(CorruptBlockError, StorageError)

    def test_missing_key_is_keyerror(self, tmp_path):
        with MmapStore(root=str(tmp_path)) as store:
            with pytest.raises(KeyError):
                store.get("nope")
        with InMemoryStore() as store:
            with pytest.raises(KeyError):
                store.get("nope")

    def test_bad_keys_rejected(self, tmp_path):
        with MmapStore(root=str(tmp_path)) as store:
            for key in ("", "../escape", "a/b", ".hidden", "sp ace", 7):
                with pytest.raises(ValueError):
                    store.put(key, np.zeros(2))


# --------------------------------------------------------------------- #
# cleanliness: no orphaned spill files, ever
# --------------------------------------------------------------------- #


class TestCleanup:
    def test_close_empties_spill_root(self, tmp_path):
        store = MmapStore(root=str(tmp_path))
        for i in range(5):
            store.put(store.next_key("b"), np.arange(10.0 + i))
        directory = store.directory
        assert os.listdir(directory)
        store.close()
        assert not os.path.exists(directory)
        assert os.listdir(tmp_path) == []  # the named root itself survives
        store.close()  # idempotent
        with pytest.raises(StorageError):
            store.put("late", np.zeros(2))
        with pytest.raises(StorageError):
            store.get("late")

    def test_finalizer_reclaims_unclosed_store(self, tmp_path):
        store = MmapStore(root=str(tmp_path))
        store.put("x", np.zeros(8))
        directory = store.directory
        del store  # no close(): the weakref finalizer must reclaim
        import gc

        gc.collect()
        assert not os.path.exists(directory)

    def test_spill_dir_env_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spills"))
        store = MmapStore()
        assert str(tmp_path / "spills") in store.directory
        store.close()
        assert os.listdir(tmp_path / "spills") == []

    def test_dropped_handles_reclaim_blocks(self, tmp_path):
        store = MmapStore(root=str(tmp_path))
        stored = StoredTensor.spill(store, np.arange(64.0))
        assert store.keys()
        stored.close()
        assert store.keys() == []
        store.close()

    def test_external_files_never_deleted(self, tmp_path):
        path = tmp_path / "input.npy"
        np.save(path, np.arange(32.0).reshape(4, 8))
        mapped = np.load(path, mmap_mode="r")
        store = MmapStore(root=str(tmp_path / "root"))
        ext = StoredTensor.external(store, mapped)
        assert not ext.owned and ext.offset > 0
        np.testing.assert_array_equal(np.asarray(ext.open()), mapped)
        with pytest.raises(StorageError):
            ext.writer()
        ext.close()
        store.close()
        assert path.exists()

    def test_delete_is_idempotent(self, tmp_path):
        with MmapStore(root=str(tmp_path)) as store:
            store.put("x", np.zeros(4))
            store.delete("x")
            store.delete("x")
            assert store.keys() == []


# --------------------------------------------------------------------- #
# gauge + geometry + policy
# --------------------------------------------------------------------- #


class TestGaugeAndGeometry:
    def test_gauge_lease_accounting(self):
        gauge = ResidentGauge()
        with gauge.lease(100):
            assert gauge.current == 100
            with gauge.lease(50):
                assert gauge.current == 150
        assert gauge.current == 0
        assert gauge.peak == 150
        gauge.reset()
        assert gauge.peak == 0

    def test_chunked_put_bounds_resident_bytes(self, tmp_path):
        gauge = ResidentGauge()
        store = MmapStore(root=str(tmp_path), chunk_bytes=256, gauge=gauge)
        store.put("big", np.zeros((64, 16)))  # 8 KiB in 256-byte chunks
        # each row is 128 bytes -> 2 rows per chunk lease
        assert gauge.peak <= 256
        store.close()

    @settings(max_examples=60, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 30), min_size=1, max_size=4).map(tuple),
        split=st.integers(0, 3),
        per_block=st.integers(1, 1 << 16),
        n_workers=st.integers(1, 8),
    )
    def test_oc_block_slices_cover_and_bound(
        self, shape, split, per_block, n_workers
    ):
        split = split % len(shape)
        itemsize = 8
        slices = oc_block_slices(shape, split, itemsize, per_block, n_workers)
        # exact cover, in order, no overlap
        assert slices[0].start == 0 and slices[-1].stop == shape[split]
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start
        # bounded: each block holds <= per_block bytes, unless a single
        # unit of the split axis already exceeds it (finest possible cut)
        size = int(np.prod(shape))
        slab = size // shape[split] * itemsize
        for sl in slices:
            if slab <= per_block:
                assert (sl.stop - sl.start) * slab <= per_block
            else:
                assert sl.stop - sl.start == 1

    def test_parse_bytes(self):
        assert parse_bytes(1234) == 1234
        assert parse_bytes("512") == 512
        assert parse_bytes("2K") == 2048
        assert parse_bytes("1.5M") == int(1.5 * 2**20)
        assert parse_bytes("1G") == 2**30
        assert parse_bytes("64MiB") == 64 * 2**20
        for bad in ("", "fast", "-1", "1Q", -5):
            with pytest.raises(ValueError):
                parse_bytes(bad)


class TestSelectStorage:
    def test_explicit_modes(self):
        assert select_storage(10, "memory", 1).mode == "memory"
        assert select_storage(10, "mmap", None).mode == "mmap"

    def test_auto_spills_over_budget_only(self):
        assert select_storage(100, "auto", 50).mode == "mmap"
        assert select_storage(100, "auto", 100).mode == "memory"
        assert select_storage(100, "auto", None).mode == "memory"
        assert select_storage(1, "auto", 0).mode == "mmap"

    def test_budget_strings_and_env(self, monkeypatch):
        assert select_storage(3 * 2**20, "auto", "2M").mode == "mmap"
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1K")
        assert select_storage(2048, "auto").mode == "mmap"
        assert select_storage(512, "auto").mode == "memory"

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            select_storage(10, "disk")
        with pytest.raises(ValueError):
            select_storage(-1, "auto")
        assert "disk" not in STORAGE_MODES

    @settings(max_examples=60, deadline=None)
    @given(
        nbytes=st.integers(0, 1 << 40),
        budget=st.one_of(st.none(), st.integers(0, 1 << 40)),
        storage=st.sampled_from(STORAGE_MODES),
    )
    def test_pure_and_deterministic(self, nbytes, budget, storage):
        a = select_storage(nbytes, storage, budget)
        b = select_storage(nbytes, storage, budget)
        assert a == b
        assert a.mode in ("memory", "mmap")
        if storage == "auto" and budget is not None:
            assert a.spilled == (nbytes > budget)


class TestReviewRegressions:
    """Pinned fixes: falsy-zero budgets, zero-size blocks, chunked casts."""

    def test_max_block_bytes_zero_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_block_bytes"):
            MmapStore(root=str(tmp_path), max_block_bytes=0)

    def test_zero_element_blocks_round_trip_both_paths(self, tmp_path):
        with MmapStore(root=str(tmp_path)) as store:
            store.put("empty", np.empty((0, 3), dtype=np.float64))
            got = store.get("empty")
            assert got.shape == (0, 3) and got.dtype == np.float64
            store.create("alloc", (4, 0), np.float32)
            assert store.writer("alloc").shape == (4, 0)
            assert store.get("alloc").nbytes == 0
            assert store.nbytes == 0

    def test_put_with_dtype_casts_chunked_and_exact(self, tmp_path):
        src = np.arange(4096, dtype=np.float64).reshape(64, 64)
        gauge = ResidentGauge()
        with MmapStore(
            root=str(tmp_path), chunk_bytes=256, gauge=gauge
        ) as store:
            store.put("f32", src, dtype=np.float32)
            got = store.get("f32")
            assert got.dtype == np.float32
            np.testing.assert_array_equal(
                np.asarray(got), src.astype(np.float32)
            )
            # leases were charged at target-chunk granularity, never the
            # whole converted block
            assert gauge.peak <= 256
        with InMemoryStore() as store:
            store.put("f32", src, dtype=np.float32)
            assert store.get("f32").dtype == np.float32

    def test_zero_memory_budget_means_finest_cut_not_default(self):
        """budget=0 must not fall back to the 64MB default ceiling."""
        sel = select_storage(100, "auto", 0)
        assert sel.spilled and sel.memory_budget == 0

    def test_session_honors_zero_budget(self, tmp_path):
        from repro.session import TuckerSession

        t = np.random.default_rng(0).standard_normal((12, 10, 8))
        session = TuckerSession(
            backend="sequential",
            storage="auto",
            memory_budget=0,
            spill_dir=str(tmp_path),
        )
        res = session.run(t, (3, 3, 2), planner="optimal", n_procs=2,
                          max_iters=1)
        assert res.storage == "mmap"
        # finest-cut blocks: the peak lease is a handful of slabs, far
        # below one whole-tensor materialization
        assert list(tmp_path.iterdir()) == []

    def test_lazy_input_dtype_cast_never_materializes(self, tmp_path):
        """An int64 .npy run at float64 casts through the store, chunked."""
        from repro.session import TuckerSession, _maybe_cast
        from repro.storage import resident_gauge

        t = np.random.default_rng(1).integers(
            -50, 50, size=(24, 20, 16), dtype=np.int64
        )
        path = tmp_path / "ints.npy"
        np.save(path, t)
        mapped = np.load(path, mmap_mode="r")
        # the prepare-side half defers (no full-RAM astype of a mapping)
        assert _maybe_cast(mapped, np.float64) is mapped
        gauge = resident_gauge()
        gauge.reset()
        session = TuckerSession(
            backend="sequential",
            storage="mmap",
            memory_budget="16K",
            spill_dir=str(tmp_path / "spill"),
        )
        res = session.run(mapped, (4, 4, 3), planner="optimal", n_procs=2,
                          max_iters=2, tol=-np.inf)
        ref = TuckerSession(backend="sequential").run(
            t.astype(np.float64), (4, 4, 3), planner="optimal", n_procs=2,
            max_iters=2, tol=-np.inf,
        )
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=1e-10
        )
        # the cast was chunked: nothing tensor-sized was ever leased
        assert gauge.peak < t.nbytes
        assert list((tmp_path / "spill").iterdir()) == []

    def test_external_view_offset_derived_from_pointers(self, tmp_path):
        """Regression: a sliced memmap must map its own region, not the
        file head (views inherit the parent's stale .offset)."""
        base = np.arange(240, dtype=np.float64).reshape(10, 24)
        path = tmp_path / "base.npy"
        np.save(path, base)
        mapped = np.load(path, mmap_mode="r")
        view = mapped[2:]  # C-contiguous, offset attribute still stale
        assert view.offset == mapped.offset  # the numpy footgun itself
        with MmapStore(root=str(tmp_path / "s")) as store:
            ext = StoredTensor.external(store, view)
            assert ext.offset == mapped.offset + 2 * 24 * 8
            np.testing.assert_array_equal(np.asarray(ext.open()), base[2:])

    def test_sliced_lazy_input_decomposes_correctly(self, tmp_path):
        """End to end: run() on a memmap slice reads the right bytes."""
        from repro.session import TuckerSession

        full = np.random.default_rng(4).standard_normal((14, 12, 10))
        path = tmp_path / "full.npy"
        np.save(path, full)
        view = np.load(path, mmap_mode="r")[2:]
        res = TuckerSession(
            backend="threaded", storage="mmap",
            spill_dir=str(tmp_path / "sp"),
        ).run(view, (3, 3, 2), planner="optimal", n_procs=2, max_iters=2,
              tol=-np.inf)
        ref = TuckerSession(backend="sequential").run(
            full[2:], (3, 3, 2), planner="optimal", n_procs=2, max_iters=2,
            tol=-np.inf,
        )
        np.testing.assert_allclose(
            res.decomposition.core, ref.decomposition.core, atol=1e-10
        )

    def test_run_distributes_once_per_call(self, monkeypatch):
        """Regression: STHOSVD + HOOI share one placed handle (no double
        spill/copy of the input)."""
        from repro.backends.sequential import SequentialBackend
        from repro.session import TuckerSession

        calls = []
        real = SequentialBackend.distribute

        def spy(self, tensor, grid, *, store=None):
            calls.append(grid)
            return real(self, tensor, grid, store=store)

        monkeypatch.setattr(SequentialBackend, "distribute", spy)
        t = np.random.default_rng(5).standard_normal((12, 10, 8))
        TuckerSession(backend="sequential").run(
            t, (3, 3, 2), planner="optimal", n_procs=2, max_iters=2
        )
        assert len(calls) == 1

    def test_put_chunk_bound_holds_for_small_leading_axis(self, tmp_path):
        """Regression: a fat first-axis slab must not blow the chunk lease."""
        gauge = ResidentGauge()
        with MmapStore(
            root=str(tmp_path), chunk_bytes=4096, gauge=gauge
        ) as store:
            t = np.zeros((2, 64, 64, 8))  # one axis-0 slab = 256 KiB
            store.put("fat", t)
            np.testing.assert_array_equal(np.asarray(store.get("fat")), t)
        assert gauge.peak <= 4096

    def test_hooi_early_return_reports_no_spill(self, tmp_path):
        """max_iters=0 places nothing, so the result must say 'memory'."""
        from repro.session import TuckerSession

        t = np.random.default_rng(6).standard_normal((10, 8, 6))
        session = TuckerSession(backend="sequential")
        init = session.run(t, (3, 3, 2), planner="optimal", n_procs=2,
                           max_iters=1)
        res = session.hooi(
            t, init.decomposition, planner="optimal", n_procs=2,
            max_iters=0, storage="mmap", spill_dir=str(tmp_path),
        )
        assert res.storage == "memory"
        assert "never placed" in res.storage_reason
        assert list(tmp_path.iterdir()) == []

    def test_run_reduces_input_norm_once(self, monkeypatch):
        """Regression: STHOSVD + HOOI share one input-norm reduction."""
        from repro.backends.sequential import SequentialBackend
        from repro.session import TuckerSession

        tags = []
        real = SequentialBackend.fro_norm_sq

        def spy(self, handle, *, tag="norm"):
            tags.append(tag)
            return real(self, handle, tag=tag)

        monkeypatch.setattr(SequentialBackend, "fro_norm_sq", spy)
        t = np.random.default_rng(7).standard_normal((12, 10, 8))
        TuckerSession(backend="sequential").run(
            t, (3, 3, 2), planner="optimal", n_procs=2, max_iters=2,
            tol=-np.inf,
        )
        assert tags.count("norm:input") == 1

    def test_scalar_blocks_round_trip_same_shape_on_both_stores(
        self, tmp_path
    ):
        """The two store kinds must agree on 0-d round-trip shape."""
        scalar = np.array(3.5)
        shapes = {}
        with MmapStore(root=str(tmp_path)) as store:
            store.put("s", scalar)
            assert store.meta_of("s") == ((), np.dtype(np.float64))
            shapes["mmap"] = store.get("s").shape
            assert float(store.get("s")) == 3.5
        with InMemoryStore() as store:
            store.put("s", scalar)
            shapes["memory"] = store.get("s").shape
        assert shapes["mmap"] == shapes["memory"] == ()

    def test_zero_budget_spill_uses_page_sized_chunks(self, tmp_path):
        """budget=0 must not degrade to one-element copy loops."""
        from repro.session import TuckerSession

        session = TuckerSession(
            backend="sequential", storage="auto", memory_budget=0,
            spill_dir=str(tmp_path),
        )
        store = session._open_store(
            session._select_storage(10**6, None, None), None
        )
        try:
            assert store.max_block_bytes >= 4096
            assert store.chunk_bytes >= 4096
        finally:
            store.close()


# --------------------------------------------------------------------- #
# spill codecs
# --------------------------------------------------------------------- #


class TestCodecs:
    def test_check_codec_normalizes_and_rejects(self):
        assert check_codec(None) == "raw"
        assert check_codec("") == "raw"
        assert check_codec("raw") == "raw"
        assert check_codec("zlib") == f"zlib:{DEFAULT_ZLIB_LEVEL}"
        assert check_codec("zlib:1") == "zlib:1"
        assert check_codec("narrow") == "narrow"
        assert check_codec("NARROW") == "narrow"  # specs are case-folded
        for bad in ("gzip", "zlib:10", "zlib:-1", "zlib:x", "zlib:"):
            with pytest.raises(ValueError):
                check_codec(bad)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, chunk=chunk_sizes, seed=st.integers(0, 2**16))
    def test_zlib_round_trip_bit_identical(
        self, tmp_path_factory, shape, chunk, seed
    ):
        array = _array_for(shape, np.float64, seed)
        with MmapStore(
            root=str(tmp_path_factory.mktemp("z")),
            chunk_bytes=chunk,
            codec="zlib:6",
        ) as store:
            store.put("blk", array)
            meta = store.block_meta("blk")
            assert meta.codec == "zlib:6"
            assert meta.nbytes == array.nbytes
            back = np.asarray(store.get("blk"))
            assert back.tobytes() == array.tobytes()

    def test_zlib_compresses_compressible_data(self, tmp_path):
        array = np.zeros((64, 64), dtype=np.float64)
        array[::4] = 1.0
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            meta = store.block_meta("blk")
            assert 0 < meta.stored_nbytes < array.nbytes
            stats = store.codec_stats()
            assert stats["spill_codec"] == "zlib:6"
            assert stats["spill_bytes_written"] == meta.stored_nbytes
            assert stats["spill_bytes_logical"] == array.nbytes
            assert stats["spill_error_bound"] == 0.0

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, chunk=chunk_sizes, seed=st.integers(0, 2**16))
    def test_narrow_within_recorded_bound(
        self, tmp_path_factory, shape, chunk, seed
    ):
        array = _array_for(shape, np.float64, seed)
        with MmapStore(
            root=str(tmp_path_factory.mktemp("n")),
            chunk_bytes=chunk,
            codec="narrow",
        ) as store:
            store.put("blk", array)
            meta = store.block_meta("blk")
            assert meta.codec == "narrow"
            assert meta.stored_nbytes == array.size * 4
            back = np.asarray(store.get("blk"))
            # the decode is exactly the float32 round-trip...
            np.testing.assert_array_equal(
                back, array.astype(np.float32).astype(np.float64)
            )
            # ...and the manifest's recorded bounds actually hold.
            diff = np.abs(back - array)
            assert float(diff.max(initial=0.0)) <= meta.abs_error
            nonzero = array != 0
            if nonzero.any():
                rel = (diff[nonzero] / np.abs(array[nonzero])).max()
                assert float(rel) <= meta.rel_error + 1e-300

    def test_narrow_non_float64_falls_back_to_raw(self, tmp_path):
        array = _array_for((8, 8), np.float32, 1)
        with MmapStore(root=str(tmp_path), codec="narrow") as store:
            store.put("blk", array)
            assert store.block_codec("blk") == "raw"
            assert np.asarray(store.get("blk")).tobytes() == array.tobytes()

    def test_store_codec_overridable_per_put(self, tmp_path):
        array = _array_for((16, 16), np.float64, 2)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("enc", array)
            store.put("flat", array, codec="raw")
            assert store.block_codec("enc") == "zlib:6"
            assert store.block_codec("flat") == "raw"

    def test_codec_blocks_are_read_only(self, tmp_path):
        array = _array_for((8, 8), np.float64, 3)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            with pytest.raises(StorageError, match="read-only"):
                store.writer("blk")
            # created outputs stay raw (and therefore writable)
            store.create("out", (4, 4), np.float64)
            w = store.writer("out")
            w[...] = 1.0
            w.flush()
            del w
            assert store.block_codec("out") == "raw"

    @pytest.mark.parametrize("codec", ["zlib:6", "narrow"])
    def test_encode_decode_hold_gauge_chunk_bound(self, tmp_path, codec):
        gauge = ResidentGauge()
        chunk = 4096
        array = _array_for((64, 64), np.float64, 4)  # 8 chunks worth
        with MmapStore(
            root=str(tmp_path), chunk_bytes=chunk, gauge=gauge, codec=codec
        ) as store:
            store.put("blk", array)
            np.asarray(store.get("blk"))
            # chunked encode + decode never lease more than a few chunks
            # at once -- far below the whole block
            assert gauge.peak <= 3 * chunk
            assert gauge.peak < array.nbytes

    def test_corrupt_compressed_payload(self, tmp_path):
        array = _array_for((32, 32), np.float64, 5)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            path = store.path_of("blk")
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.seek(size // 2)
                byte = fh.read(1)
                fh.seek(size // 2)
                fh.write(bytes([byte[0] ^ 0xFF]))
            with pytest.raises(CorruptBlockError) as info:
                store.get("blk")
            assert info.value.reason == "corrupt-compressed-data"

    def test_truncated_compressed_payload_is_size_mismatch(self, tmp_path):
        array = _array_for((32, 32), np.float64, 6)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            with open(store.path_of("blk"), "r+b") as fh:
                fh.truncate(7)
            with pytest.raises(CorruptBlockError) as info:
                store.get("blk")
            assert info.value.reason == "size-mismatch"

    def test_unknown_manifest_codec(self, tmp_path):
        array = _array_for((8, 8), np.float64, 7)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            manifest_path = os.path.join(store.directory, "blk.json")
            with open(manifest_path) as fh:
                manifest = json.load(fh)
            manifest["codec"] = "gzip"
            with open(manifest_path, "w") as fh:
                json.dump(manifest, fh)
            with pytest.raises(CorruptBlockError) as info:
                store.get("blk")
            assert info.value.reason == "unknown-codec"

    def test_decoded_scratch_invisible_and_cleaned(self, tmp_path):
        array = _array_for((16, 16), np.float64, 8)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            np.asarray(store.get("blk"))  # forces the decode scratch
            scratch = os.path.join(store.directory, "blk.dec")
            assert os.path.exists(scratch)
            assert list(store.keys()) == ["blk"]
            store.delete("blk")
            assert not os.path.exists(scratch)
        assert os.listdir(str(tmp_path)) == []

    def test_mappable_path_decodes_for_workers(self, tmp_path):
        array = _array_for((16, 16), np.float64, 9)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", array)
            path = store.mappable_path("blk")
            assert path is not None
            mapped = np.memmap(path, dtype=np.float64, mode="r",
                               shape=(16, 16))
            np.testing.assert_array_equal(np.asarray(mapped), array)
            del mapped

    def test_put_overwrite_drops_stale_scratch(self, tmp_path):
        first = _array_for((16, 16), np.float64, 10)
        second = _array_for((16, 16), np.float64, 11)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            store.put("blk", first)
            np.asarray(store.get("blk"))  # materialize stale scratch
            store.put("blk", second)
            np.testing.assert_array_equal(
                np.asarray(store.get("blk")), second
            )

    def test_spill_handles_for_codec_blocks_resolve_mappable(self, tmp_path):
        array = _array_for((16, 16), np.float64, 12)
        with MmapStore(root=str(tmp_path), codec="zlib:6") as store:
            handle = StoredTensor.spill(store, array, key="blk")
            # encoded blocks carry no direct path; workers go through
            # mappable() which decodes to scratch
            assert handle.path is None
            mapped = handle.mappable()
            assert mapped is not None
            path, offset = mapped
            assert offset == 0
            view = np.memmap(path, dtype=np.float64, mode="r",
                             shape=(16, 16))
            np.testing.assert_array_equal(np.asarray(view), array)
            del view
            handle.close()
