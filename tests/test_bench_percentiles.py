"""Tests for percentile curves."""

import pytest

from repro.bench.percentiles import curve_summary, percentile_curve


class TestPercentileCurve:
    def test_known_quantiles(self):
        vals = list(range(101))  # 0..100
        curve = percentile_curve(vals)
        assert curve[0] == 0
        assert curve[50] == 50
        assert curve[100] == 100

    def test_interpretation_matches_paper(self):
        # "normalized time t at percentile k: for k% of tensors the value is
        # less than t" -- i.e. at most ~k% of values lie strictly below.
        vals = [1.0] * 60 + [4.7] * 40
        curve = percentile_curve(vals)
        assert curve[50] == 1.0
        assert curve[70] == 4.7

    def test_single_value(self):
        assert percentile_curve([2.5])[0] == 2.5
        assert percentile_curve([2.5])[100] == 2.5

    def test_inf_sorts_last(self):
        vals = [1.0, 2.0, float("inf")]
        curve = percentile_curve(vals, points=(0, 50, 100))
        assert curve[0] == 1.0
        assert curve[50] == 2.0
        assert curve[100] == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_curve([])

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile_curve([1.0], points=(101,))


class TestCurveSummary:
    def test_basic(self):
        s = curve_summary([1.0, 2.0, 3.0, 10.0])
        assert s["min"] == 1.0
        assert s["median"] == 2.5
        assert s["max"] == 10.0

    def test_ignores_inf_when_finite_exist(self):
        s = curve_summary([1.0, 3.0, float("inf")])
        assert s["max"] == 3.0
