"""Tests for TTM-tree structure, validation and prior-work constructions."""

import pytest

from repro.core.meta import TensorMeta
from repro.core.trees import LEAF, ROOT, TTM, Node, TTMTree, balanced_tree, chain_tree


class TestNode:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            Node("branch")

    def test_leaf_needs_mode_and_no_children(self):
        with pytest.raises(ValueError):
            Node(LEAF)
        with pytest.raises(ValueError):
            Node(LEAF, mode=0, children=[Node(LEAF, mode=1)])


class TestValidation:
    def test_missing_leaf_rejected(self):
        root = Node(ROOT, children=[Node(TTM, mode=1, children=[Node(LEAF, mode=0)])])
        with pytest.raises(ValueError, match="one leaf per mode"):
            TTMTree(root, 3)

    def test_duplicate_mode_on_path_rejected(self):
        # path to F~0 applies mode 1 twice and skips nothing else (N=2 needs 1)
        inner = Node(TTM, mode=1, children=[Node(LEAF, mode=0)])
        root = Node(
            ROOT,
            children=[
                Node(TTM, mode=1, children=[inner]),
                Node(TTM, mode=0, children=[Node(LEAF, mode=1)]),
            ],
        )
        with pytest.raises(ValueError):
            TTMTree(root, 2)

    def test_root_kind_enforced(self):
        with pytest.raises(ValueError, match="root"):
            TTMTree(Node(TTM, mode=0, children=[Node(LEAF, mode=1)]), 2)

    def test_single_mode_tree(self):
        t = TTMTree(Node(ROOT, children=[Node(LEAF, mode=0)]), 1)
        assert t.n_ttm_ops == 0


class TestStructureQueries:
    def test_preorder_uids(self):
        t = chain_tree(3)
        uids = [n.uid for n in t.nodes]
        assert uids == list(range(len(uids)))
        assert t.nodes[0].kind == ROOT

    def test_parent_links(self):
        t = chain_tree(3)
        for node in t.nodes[1:]:
            parent = t.parent(node)
            assert node in parent.children
        assert t.parent(t.root) is None

    def test_premultiplied_mask(self):
        t = chain_tree(3)  # natural order
        for leaf in t.leaves():
            expected = 0b111 ^ (1 << leaf.mode)
            assert t.premultiplied_mask(leaf) == expected

    def test_depth(self):
        assert chain_tree(4).depth() == 4  # 3 TTMs + leaf edge
        assert balanced_tree(4).depth() == 4


class TestChainTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_ttm_count_n_times_n_minus_1(self, n):
        assert chain_tree(n).n_ttm_ops == n * (n - 1)

    def test_ordering_respected(self):
        t = chain_tree(3, ordering=[2, 0, 1])
        # first child chain belongs to target mode 2: applies 0 then 1
        first = t.root.children[0]
        assert first.mode == 0
        assert first.children[0].mode == 1
        assert first.children[0].children[0].mode == 2  # the leaf

    def test_bad_ordering(self):
        with pytest.raises(ValueError, match="permutation"):
            chain_tree(3, ordering=[0, 1, 1])

    def test_validates(self):
        for n in range(1, 7):
            chain_tree(n).validate()


class TestBalancedTree:
    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 5), (4, 8), (8, 24)])
    def test_ttm_count_n_log_n_ish(self, n, expected):
        # T(n) = n + T(floor(n/2)) + T(ceil(n/2)), T(1) = 0
        assert balanced_tree(n).n_ttm_ops == expected

    def test_fewer_ops_than_chain(self):
        for n in range(3, 8):
            assert balanced_tree(n).n_ttm_ops < chain_tree(n).n_ttm_ops

    def test_validates(self):
        for n in range(1, 9):
            balanced_tree(n).validate()

    def test_figure3c_shape_for_n4(self):
        # root has two children: chain of modes {0,1} and chain of modes {2,3}
        t = balanced_tree(4)
        top_modes = sorted(c.mode for c in t.root.children)
        assert top_modes == [0, 2]


class TestSerialization:
    @pytest.mark.parametrize("maker", [chain_tree, balanced_tree])
    def test_roundtrip(self, maker):
        t = maker(5)
        t2 = TTMTree.from_dict(t.to_dict())
        assert t2.to_dict() == t.to_dict()
        assert t2.n_ttm_ops == t.n_ttm_ops

    def test_pretty_contains_labels(self):
        meta = TensorMeta(dims=(24, 20, 16, 10), core=(6, 10, 4, 5))
        text = chain_tree(4).pretty(meta)
        assert "T" in text and "F~0" in text and "x1" in text


def test_pretty_without_meta():
    assert "F~2" in balanced_tree(3).pretty()
