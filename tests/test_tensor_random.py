"""Tests for synthetic tensor generators."""

import numpy as np
import pytest

from repro.tensor.dense import relative_error
from repro.tensor.random import (
    low_rank_tensor,
    random_orthonormal,
    random_tensor,
    random_tucker,
    separable_field_tensor,
)
from repro.tensor.unfold import unfold


class TestRandomTensor:
    def test_shape_and_range(self):
        t = random_tensor((3, 4, 5), seed=0)
        assert t.shape == (3, 4, 5)
        assert np.all(t >= -1) and np.all(t <= 1)

    def test_seeded_determinism(self):
        np.testing.assert_array_equal(
            random_tensor((3, 4), seed=7), random_tensor((3, 4), seed=7)
        )


class TestRandomOrthonormal:
    def test_orthonormal_columns(self):
        q = random_orthonormal(10, 4, seed=0)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            random_orthonormal(3, 5)


class TestRandomTucker:
    def test_shapes(self):
        core, factors = random_tucker((8, 7, 6), (3, 2, 4), seed=1)
        assert core.shape == (3, 2, 4)
        assert [f.shape for f in factors] == [(8, 3), (7, 2), (6, 4)]


class TestLowRankTensor:
    def test_exact_multilinear_rank_when_noiseless(self):
        t = low_rank_tensor((10, 9, 8), (3, 2, 4), noise=0.0, seed=2)
        for mode, r in [(0, 3), (1, 2), (2, 4)]:
            rank = np.linalg.matrix_rank(unfold(t, mode), tol=1e-8)
            assert rank == r

    def test_noise_level_controls_error(self):
        dims, core = (10, 9, 8), (3, 2, 4)
        clean = low_rank_tensor(dims, core, noise=0.0, seed=3)
        noisy = low_rank_tensor(dims, core, noise=0.1, seed=3)
        # same seed: the signal part matches, the residual is ~10%
        assert relative_error(clean, noisy) == pytest.approx(0.1, rel=0.05)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            low_rank_tensor((4, 4), (2, 2), noise=-0.1)


class TestSeparableField:
    def test_numerically_compressible(self):
        t = separable_field_tensor((20, 18, 16), n_bumps=4, noise=0.0, seed=4)
        # smooth separable structure: tiny tail singular values per unfolding
        for mode in range(3):
            s = np.linalg.svd(unfold(t, mode), compute_uv=False)
            assert s[6] / s[0] < 1e-3  # rank <= n_bumps (+slack)

    def test_deterministic(self):
        a = separable_field_tensor((6, 5, 4), seed=9)
        b = separable_field_tensor((6, 5, 4), seed=9)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero_bumps(self):
        with pytest.raises(ValueError):
            separable_field_tensor((4, 4), n_bumps=0)
