"""Tests for the communication-volume semantics (paper sections 4.1/4.3)."""

import pytest

from repro.core.cost import node_costs
from repro.core.meta import TensorMeta
from repro.core.trees import chain_tree
from repro.core.volume import node_volumes, scheme_volume, static_volume


@pytest.fixture
def m3():
    return TensorMeta(dims=(8, 6, 4), core=(4, 3, 2))


class TestStaticVolume:
    def test_formula_by_hand(self, m3):
        # grid (2, 1, 1): only TTMs along mode 0 incur volume (q0-1)|Out|
        t = chain_tree(3)
        costs = node_costs(t, m3)
        expected = sum(
            costs[n.uid]["out_card"]
            for n in t.internal_nodes()
            if n.mode == 0
        )
        assert static_volume(t, m3, (2, 1, 1)) == expected

    def test_grid_of_ones_is_free(self, m3):
        assert static_volume(chain_tree(3), m3, (1, 1, 1)) == 0

    def test_invalid_grid_rejected(self, m3):
        with pytest.raises(ValueError, match="not valid"):
            static_volume(chain_tree(3), m3, (8, 1, 1))  # q0 > K0=4

    def test_monotone_in_q(self, m3):
        t = chain_tree(3)
        assert static_volume(t, m3, (2, 1, 1)) <= static_volume(t, m3, (4, 1, 1))


class TestSchemeVolume:
    def test_static_scheme_has_no_regrid(self, m3):
        t = chain_tree(3)
        scheme = {n.uid: (2, 1, 1) for n in t.nodes if n.kind != "leaf"}
        ttm, regrid = scheme_volume(t, m3, scheme)
        assert regrid == 0
        assert ttm == static_volume(t, m3, (2, 1, 1))

    def test_regrid_charged_on_change(self, m3):
        t = chain_tree(3)
        scheme = {n.uid: (2, 1, 1) for n in t.nodes if n.kind != "leaf"}
        # change one internal node's grid -> regrid |In| at that node
        some = next(iter(t.internal_nodes()))
        scheme[some.uid] = (1, 2, 1)
        vols = node_volumes(t, m3, scheme)
        costs = node_costs(t, m3)
        assert vols[some.uid]["regrid"] == costs[some.uid]["in_card"]

    def test_child_of_regridded_node_compares_to_new_grid(self, m3):
        t = chain_tree(3)
        # chain: root -> a -> b -> leaf; set a to (1,2,1) and b same ->
        # b pays no regrid even though root grid differs
        a = t.root.children[0]
        b = a.children[0]
        scheme = {t.root.uid: (2, 1, 1), a.uid: (1, 2, 1), b.uid: (1, 2, 1)}
        # fill all other internal nodes with root grid
        for n in t.nodes:
            if n.kind != "leaf" and n.uid not in scheme:
                scheme[n.uid] = (2, 1, 1)
        vols = node_volumes(t, m3, scheme)
        assert vols[a.uid]["regrid"] > 0
        assert vols[b.uid]["regrid"] == 0

    def test_missing_node_rejected(self, m3):
        t = chain_tree(3)
        with pytest.raises(ValueError, match="missing"):
            scheme_volume(t, m3, {t.root.uid: (1, 1, 1)})

    def test_missing_root_rejected(self, m3):
        t = chain_tree(3)
        scheme = {
            n.uid: (1, 1, 1)
            for n in t.nodes
            if n.kind == "ttm"
        }
        with pytest.raises(ValueError, match="root"):
            scheme_volume(t, m3, scheme)
