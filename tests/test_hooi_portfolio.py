"""Tests for the time-aware portfolio planner."""

import pytest

from repro.bench.algorithms import ALGORITHMS, make_planner
from repro.core.meta import TensorMeta
from repro.hooi.model import predict
from repro.hooi.portfolio import DEFAULT_CANDIDATES, select_plan
from repro.mpi.machine import MachineModel


@pytest.fixture
def meta():
    return TensorMeta(dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25))


class TestSelectPlan:
    def test_returns_fastest_candidate(self, meta):
        choice = select_plan(meta, 32)
        assert choice.modeled_seconds == min(choice.scores.values())
        assert choice.scores[choice.config] == choice.modeled_seconds

    def test_dominates_every_paper_config(self, meta):
        machine = MachineModel.bgq_like()
        choice = select_plan(meta, 32, machine)
        for name in ALGORITHMS:
            plan = make_planner(name, 32).plan(meta)
            assert choice.modeled_seconds <= predict(plan, machine).total_seconds + 1e-12

    def test_dominates_on_adversarial_tensor(self):
        # a tensor where opt-dynamic loses to chain trees (tiny core dims);
        # the portfolio must pick the better configuration
        m = TensorMeta(dims=(20, 20, 100, 100, 100), core=(2, 4, 10, 10, 10))
        machine = MachineModel.bgq_like()
        choice = select_plan(m, 32, machine)
        opt = predict(make_planner("opt-dynamic", 32).plan(m), machine)
        ck = predict(make_planner("chain-k", 32).plan(m), machine)
        assert choice.modeled_seconds <= min(
            opt.total_seconds, ck.total_seconds
        ) + 1e-12

    def test_tie_breaks_toward_first_candidate(self, meta):
        # duplicate candidates: the first instance wins
        choice = select_plan(
            meta, 32, candidates=(("optimal", "dynamic"), ("optimal", "dynamic"))
        )
        assert choice.config == ("optimal", "dynamic")

    def test_empty_candidates_rejected(self, meta):
        with pytest.raises(ValueError):
            select_plan(meta, 32, candidates=())

    def test_scores_cover_candidates(self, meta):
        choice = select_plan(meta, 32)
        assert set(choice.scores) == set(DEFAULT_CANDIDATES)
