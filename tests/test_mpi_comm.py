"""Tests for the virtual cluster's collectives: semantics + volume accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.comm import SimCluster
from repro.mpi.machine import MachineModel


def make_cluster(p=4) -> SimCluster:
    return SimCluster(p, MachineModel.uniform(bandwidth=1e9, alpha=0.0))


class TestGroupValidation:
    def test_rejects_empty_group(self):
        c = make_cluster()
        with pytest.raises(ValueError):
            c.allgather([], {}, tag="x")

    def test_rejects_duplicate_ranks(self):
        c = make_cluster()
        with pytest.raises(ValueError):
            c.allreduce([0, 0], {0: np.zeros(2)})

    def test_rejects_out_of_range(self):
        c = make_cluster(2)
        with pytest.raises(ValueError):
            c.allreduce([0, 5], {0: np.zeros(2), 5: np.zeros(2)})


class TestReduceScatter:
    def test_semantics(self):
        c = make_cluster(3)
        group = [0, 1, 2]
        parts = {r: np.full((6, 2), float(r + 1)) for r in group}
        out = c.reduce_scatter(group, parts, [2, 2, 2], axis=0)
        total = 1.0 + 2.0 + 3.0
        for i, r in enumerate(group):
            assert out[r].shape == (2, 2)
            np.testing.assert_allclose(out[r], total)

    def test_uneven_counts(self):
        c = make_cluster(2)
        parts = {0: np.arange(10.0).reshape(5, 2), 1: np.zeros((5, 2))}
        out = c.reduce_scatter([0, 1], parts, [3, 2], axis=0)
        np.testing.assert_allclose(out[0], np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(out[1], np.arange(6.0, 10.0).reshape(2, 2))

    def test_volume_formula(self):
        # (p - 1) * total output elements
        c = make_cluster(4)
        group = [0, 1, 2, 3]
        parts = {r: np.ones((8, 3)) for r in group}
        c.reduce_scatter(group, parts, [2, 2, 2, 2], axis=0)
        assert c.stats.volume(op="reduce_scatter") == 3 * 8 * 3

    def test_single_rank_no_comm(self):
        c = make_cluster(4)
        out = c.reduce_scatter([2], {2: np.ones((4, 2))}, [4], axis=0)
        np.testing.assert_allclose(out[2], np.ones((4, 2)))
        assert len(c.stats) == 0

    def test_counts_must_sum(self):
        c = make_cluster(2)
        parts = {0: np.ones((5, 2)), 1: np.ones((5, 2))}
        with pytest.raises(ValueError, match="counts"):
            c.reduce_scatter([0, 1], parts, [3, 3], axis=0)

    def test_reduction_order_deterministic(self):
        # ascending-rank order: result identical across calls
        c = make_cluster(3)
        rng = np.random.default_rng(0)
        parts = {r: rng.standard_normal((4, 2)) for r in range(3)}
        a = c.reduce_scatter([0, 1, 2], dict(parts), [2, 1, 1], axis=0)
        b = c.reduce_scatter([0, 1, 2], dict(parts), [2, 1, 1], axis=0)
        for r in range(3):
            np.testing.assert_array_equal(a[r], b[r])


class TestAlltoallv:
    def test_semantics_and_volume(self):
        c = make_cluster(3)
        send = {
            0: {0: np.ones(4), 1: np.full(2, 2.0)},
            1: {2: np.full(3, 3.0)},
            2: {0: np.full(5, 4.0)},
        }
        recv = c.alltoallv(send)
        np.testing.assert_allclose(recv[0][0], np.ones(4))
        np.testing.assert_allclose(recv[1][0], np.full(2, 2.0))
        np.testing.assert_allclose(recv[2][1], np.full(3, 3.0))
        np.testing.assert_allclose(recv[0][2], np.full(5, 4.0))
        # local piece (0 -> 0) not counted
        assert c.stats.volume(op="alltoallv") == 2 + 3 + 5

    def test_rejects_unknown_destination(self):
        c = make_cluster(2)
        with pytest.raises(ValueError):
            c.alltoallv({0: {7: np.ones(1)}, 1: {}})

    def test_all_local_records_nothing(self):
        c = make_cluster(2)
        c.alltoallv({0: {0: np.ones(3)}, 1: {1: np.ones(3)}})
        assert len(c.stats) == 0


class TestAllgather:
    def test_semantics(self):
        c = make_cluster(3)
        pieces = {r: np.full((r + 1, 2), float(r)) for r in range(3)}
        out = c.allgather([0, 1, 2], pieces, axis=0)
        expected = np.concatenate([pieces[r] for r in range(3)], axis=0)
        for r in range(3):
            np.testing.assert_array_equal(out[r], expected)

    def test_volume_formula(self):
        c = make_cluster(4)
        pieces = {r: np.ones((2, 3)) for r in range(4)}
        c.allgather([0, 1, 2, 3], pieces, axis=0)
        assert c.stats.volume(op="allgather") == 3 * 4 * 2 * 3

    def test_outputs_independent(self):
        c = make_cluster(2)
        out = c.allgather([0, 1], {0: np.ones(2), 1: np.ones(2)}, axis=0)
        out[0][0] = 99.0
        assert out[1][0] == 1.0


class TestAllreduce:
    def test_semantics(self):
        c = make_cluster(3)
        data = {r: np.full((2, 2), float(r)) for r in range(3)}
        out = c.allreduce([0, 1, 2], data)
        for r in range(3):
            np.testing.assert_allclose(out[r], 3.0)

    def test_volume_formula(self):
        c = make_cluster(4)
        data = {r: np.ones(10) for r in range(4)}
        c.allreduce([0, 1, 2, 3], data)
        assert c.stats.volume(op="allreduce") == 2 * 10 * 3

    def test_shape_mismatch_rejected(self):
        c = make_cluster(2)
        with pytest.raises(ValueError):
            c.allreduce([0, 1], {0: np.ones(2), 1: np.ones(3)})


class TestBcast:
    def test_semantics_and_volume(self):
        c = make_cluster(4)
        out = c.bcast([0, 1, 2, 3], np.arange(5.0), root=2)
        for r in range(4):
            np.testing.assert_array_equal(out[r], np.arange(5.0))
        assert c.stats.volume(op="bcast") == 5 * 3

    def test_root_must_be_member(self):
        c = make_cluster(4)
        with pytest.raises(ValueError):
            c.bcast([0, 1], np.ones(2), root=3)


class TestPropertyBased:
    @given(
        p=st.integers(min_value=2, max_value=6),
        rows=st.integers(min_value=2, max_value=12),
        cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_reduce_scatter_equals_numpy(self, p, rows, cols, seed):
        if rows < p:
            rows = p
        c = make_cluster(p)
        rng = np.random.default_rng(seed)
        parts = {r: rng.standard_normal((rows, cols)) for r in range(p)}
        base, extra = divmod(rows, p)
        counts = [base + (1 if i < extra else 0) for i in range(p)]
        out = c.reduce_scatter(list(range(p)), parts, counts, axis=0)
        total = sum(parts[r] for r in range(p))
        start = 0
        for i in range(p):
            np.testing.assert_allclose(
                out[i], total[start : start + counts[i]], rtol=1e-12
            )
            start += counts[i]
        assert c.stats.volume(op="reduce_scatter") == (p - 1) * rows * cols

    @given(
        p=st.integers(min_value=2, max_value=6),
        n=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_allreduce_equals_numpy(self, p, n, seed):
        c = make_cluster(p)
        rng = np.random.default_rng(seed)
        data = {r: rng.standard_normal(n) for r in range(p)}
        out = c.allreduce(list(range(p)), data)
        np.testing.assert_allclose(out[0], sum(data.values()), rtol=1e-12)
