"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_core_dims,
    check_dims,
    check_mode,
    check_positive_int,
)


class TestCheckPositiveInt:
    def test_accepts_ints(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(1, "x") == 1

    def test_accepts_integral_floats(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            check_positive_int("three", "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="n_procs"):
            check_positive_int(0, "n_procs")


class TestCheckDims:
    def test_roundtrip(self):
        assert check_dims([3, 4, 5]) == (3, 4, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_dims([])

    def test_rejects_zero_length_mode(self):
        with pytest.raises(ValueError):
            check_dims([3, 0, 5])


class TestCheckCoreDims:
    def test_ok(self):
        assert check_core_dims([2, 2], [4, 4]) == (2, 2)

    def test_equal_allowed(self):
        assert check_core_dims([4, 4], [4, 4]) == (4, 4)

    def test_rejects_longer_core(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_core_dims([5, 2], [4, 4])

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            check_core_dims([2, 2, 2], [4, 4])


class TestCheckMode:
    def test_bounds(self):
        assert check_mode(0, 3) == 0
        assert check_mode(2, 3) == 2
        with pytest.raises(ValueError):
            check_mode(3, 3)
        with pytest.raises(ValueError):
            check_mode(-1, 3)
