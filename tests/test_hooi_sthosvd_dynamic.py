"""Tests for dynamic gridding applied to STHOSVD (paper section 1 remark)."""

import numpy as np
import pytest

from repro.core.meta import TensorMeta
from repro.dist.dtensor import DistTensor
from repro.hooi.sthosvd import dist_sthosvd, sthosvd, sthosvd_grid_plan
from repro.mpi.comm import SimCluster
from repro.tensor.random import low_rank_tensor


@pytest.fixture
def problem():
    dims, core = (12, 10, 8, 6), (4, 3, 3, 2)
    return dims, core, low_rank_tensor(dims, core, noise=0.1, seed=0)


class TestGridPlan:
    def test_shapes_and_validity(self, problem):
        dims, core, _ = problem
        order, grids, ttm_vol, regrid_vol = sthosvd_grid_plan(dims, core, 8)
        assert sorted(order) == list(range(4))
        assert len(grids) == 4
        for g in grids:
            assert int(np.prod(g)) == 8
            assert all(q <= k for q, k in zip(g, core))
        assert ttm_vol >= 0 and regrid_vol >= 0

    def test_beats_best_static_grid(self, problem):
        # the path DP with a free initial layout can never lose to the best
        # single static grid for the same chain
        dims, core, _ = problem
        meta = TensorMeta(dims=dims, core=core)
        order, _, ttm_vol, regrid_vol = sthosvd_grid_plan(dims, core, 8)
        from repro.core.grids import valid_grids

        best_static = None
        for g in valid_grids(8, meta):
            premult = 0
            vol = 0
            for mode in order:
                premult |= 1 << mode
                vol += (g[mode] - 1) * meta.card_after(premult)
            best_static = vol if best_static is None else min(best_static, vol)
        assert ttm_vol + regrid_vol <= best_static

    def test_communication_free_when_possible(self):
        # plenty of headroom: K large on one mode -> DP can make every TTM
        # free by keeping ranks on already-truncated or untouched modes
        order, grids, ttm_vol, _ = sthosvd_grid_plan(
            (64, 64, 64), (32, 32, 32), 4
        )
        assert ttm_vol == 0


class TestDistSthosvdWithScheme:
    def test_matches_static_results(self, problem):
        dims, core, t = problem
        order, grids, _, _ = sthosvd_grid_plan(dims, core, 8, mode_order="natural")
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, grids[0])
        core_dist, factors = dist_sthosvd(
            dt, core, mode_order="natural", grid_scheme=grids
        )
        seq = sthosvd(t, core, mode_order="natural")
        for a, b in zip(factors, seq.factors):
            np.testing.assert_allclose(a, b, atol=1e-8)
        np.testing.assert_allclose(core_dist.to_global(), seq.core, atol=1e-8)

    def test_scheme_reduces_ttm_volume(self, problem):
        dims, core, t = problem
        meta = TensorMeta(dims=dims, core=core)
        del meta
        order, grids, planned_ttm, _ = sthosvd_grid_plan(
            dims, core, 8, mode_order="natural"
        )

        # dynamic run
        c_dyn = SimCluster(8)
        dt = DistTensor.from_global(c_dyn, t, grids[0])
        dist_sthosvd(dt, core, mode_order="natural", grid_scheme=grids, tag="s")
        dyn_ttm = c_dyn.stats.volume(op="reduce_scatter", tag_prefix="s:ttm")
        assert dyn_ttm == planned_ttm

        # static run on the same initial grid
        c_st = SimCluster(8)
        dt2 = DistTensor.from_global(c_st, t, grids[0])
        dist_sthosvd(dt2, core, mode_order="natural", tag="s")
        static_ttm = c_st.stats.volume(op="reduce_scatter", tag_prefix="s:ttm")
        assert dyn_ttm <= static_ttm

    def test_scheme_length_checked(self, problem):
        dims, core, t = problem
        cluster = SimCluster(4)
        dt = DistTensor.from_global(cluster, t, (2, 2, 1, 1))
        with pytest.raises(ValueError, match="one grid per mode"):
            dist_sthosvd(dt, core, grid_scheme=[(2, 2, 1, 1)])
