"""Tests for the distributed Gram / SVD factor extraction."""

import numpy as np
import pytest

from repro.dist.dtensor import DistTensor
from repro.dist.gram import dist_gram, dist_leading_factor
from repro.mpi.comm import SimCluster
from repro.tensor.linalg import gram, leading_eigvecs
from repro.tensor.unfold import unfold


class TestDistGram:
    @pytest.mark.parametrize(
        "gshape,mode",
        [
            ((2, 2, 2), 0),
            ((2, 2, 2), 1),
            ((4, 2, 1), 0),
            ((1, 8, 1), 1),
            ((8, 1, 1), 2),
            ((1, 1, 8), 2),
        ],
    )
    def test_matches_sequential_gram(self, gshape, mode):
        c = SimCluster(8)
        t = np.random.default_rng(0).standard_normal((8, 9, 10))
        dt = DistTensor.from_global(c, t, gshape)
        g = dist_gram(dt, mode)
        np.testing.assert_allclose(g, gram(unfold(t, mode)), rtol=1e-10)

    def test_regrid_path_taken_when_possible(self):
        # q_mode > 1 but a q=1 factorization exists -> alltoallv, no allgather
        c = SimCluster(8)
        t = np.random.default_rng(1).standard_normal((8, 9, 10))
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        dist_gram(dt, 0, tag="svd")
        assert c.stats.volume(op="alltoallv", tag_prefix="svd") > 0
        assert c.stats.volume(op="allgather", tag_prefix="svd") == 0

    def test_no_comm_when_mode_not_split(self):
        c = SimCluster(4)
        t = np.random.default_rng(2).standard_normal((8, 8))
        dt = DistTensor.from_global(c, t, (1, 4))
        dist_gram(dt, 0, tag="svd")
        assert c.stats.volume(op="alltoallv", tag_prefix="svd") == 0
        assert c.stats.volume(op="allgather", tag_prefix="svd") == 0
        # allreduce of the Gram always happens
        assert c.stats.volume(op="allreduce", tag_prefix="svd") > 0

    def test_allgather_fallback(self):
        # lengths too small for any q_mode=1 grid: 4 ranks, other mode len 2
        c = SimCluster(4)
        t = np.random.default_rng(3).standard_normal((8, 2))
        dt = DistTensor.from_global(c, t, (4, 1))
        g = dist_gram(dt, 0, tag="svd")
        np.testing.assert_allclose(g, gram(unfold(t, 0)), rtol=1e-10)
        assert c.stats.volume(op="allgather", tag_prefix="svd") > 0


class TestDistLeadingFactor:
    def test_matches_sequential(self):
        c = SimCluster(8)
        t = np.random.default_rng(4).standard_normal((8, 9, 10))
        dt = DistTensor.from_global(c, t, (2, 2, 2))
        f = dist_leading_factor(dt, 1, 3)
        expected = leading_eigvecs(gram(unfold(t, 1)), 3)
        np.testing.assert_allclose(f, expected, atol=1e-8)

    def test_orthonormal(self):
        c = SimCluster(4)
        t = np.random.default_rng(5).standard_normal((6, 6, 6))
        dt = DistTensor.from_global(c, t, (2, 2, 1))
        f = dist_leading_factor(dt, 0, 2)
        np.testing.assert_allclose(f.T @ f, np.eye(2), atol=1e-10)

    def test_records_evd_compute(self):
        c = SimCluster(2)
        dt = DistTensor.from_global(
            c, np.random.default_rng(6).standard_normal((4, 6)), (2, 1)
        )
        dist_leading_factor(dt, 0, 2, tag="svd")
        evd = [r for r in c.stats.records if r.op == "evd"]
        assert len(evd) == 1 and evd[0].flops == pytest.approx(4 / 3 * 4**3)
