"""Tests for the sweep runner and algorithm configs."""

import math

import pytest

from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.runner import evaluate_algorithms, normalize_against, sweep
from repro.bench.suite import paper_subsample
from repro.core.meta import TensorMeta


@pytest.fixture
def meta():
    return TensorMeta(dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25))


class TestAlgorithms:
    def test_all_configs_instantiable(self):
        for name in ALGORITHMS:
            p = make_planner(name, 8)
            assert p.n_procs == 8

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_planner("quantum", 8)

    def test_paper_labels(self):
        assert paper_label("chain-k") == "CK"
        assert paper_label("opt-dynamic") == "OPT"


class TestEvaluate:
    def test_metric_keys(self, meta):
        out = evaluate_algorithms(meta, ["chain-k", "opt-dynamic"], n_procs=8)
        for metrics in out.values():
            assert set(metrics) == {
                "flops",
                "ttm_volume",
                "regrid_volume",
                "comm_volume",
                "tree_compute_s",
                "tree_comm_s",
                "svd_s",
                "total_s",
            }
            assert all(math.isfinite(v) for v in metrics.values())

    def test_opt_has_min_flops(self, meta):
        out = evaluate_algorithms(meta, list(ALGORITHMS), n_procs=8)
        opt = out["opt-dynamic"]["flops"]
        for name, metrics in out.items():
            assert metrics["flops"] >= opt

    def test_dynamic_volume_le_static_on_same_tree(self, meta):
        out = evaluate_algorithms(
            meta, ["opt-static", "opt-dynamic"], n_procs=8
        )
        assert out["opt-dynamic"]["comm_volume"] <= out["opt-static"]["comm_volume"]


class TestSweepAndNormalize:
    def test_sweep_record_shape(self):
        metas = paper_subsample(5, count=4)
        recs = sweep(metas, ["chain-k", "opt-dynamic"], n_procs=8)
        assert len(recs) == 4
        for rec in recs:
            assert set(rec["algs"]) == {"chain-k", "opt-dynamic"}

    def test_normalize_baseline_is_one(self):
        metas = paper_subsample(5, count=4)
        recs = sweep(metas, ["chain-k", "opt-dynamic"], n_procs=8)
        norm = normalize_against(recs, "total_s", "opt-dynamic")
        assert all(v == 1.0 for v in norm["opt-dynamic"])
        assert len(norm["chain-k"]) == 4

    def test_normalize_zero_baseline(self):
        recs = [
            {"meta": None, "algs": {"a": {"x": 0.0}, "b": {"x": 0.0}}},
            {"meta": None, "algs": {"a": {"x": 0.0}, "b": {"x": 2.0}}},
        ]
        norm = normalize_against(recs, "x", "a")
        assert norm["b"] == [1.0, float("inf")]
