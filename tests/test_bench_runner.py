"""Tests for the sweep runner and algorithm configs."""

import math

import pytest

from repro.bench.algorithms import ALGORITHMS, make_planner, paper_label
from repro.bench.runner import (
    evaluate_algorithms,
    normalize_against,
    run_backends,
    run_batch,
    run_serve,
    sweep,
)
from repro.bench.suite import paper_subsample
from repro.core.meta import TensorMeta
from repro.tensor.random import low_rank_tensor


@pytest.fixture
def meta():
    return TensorMeta(dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25))


class TestAlgorithms:
    def test_all_configs_instantiable(self):
        for name in ALGORITHMS:
            p = make_planner(name, 8)
            assert p.n_procs == 8

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_planner("quantum", 8)

    def test_paper_labels(self):
        assert paper_label("chain-k") == "CK"
        assert paper_label("opt-dynamic") == "OPT"


class TestEvaluate:
    def test_metric_keys(self, meta):
        out = evaluate_algorithms(meta, ["chain-k", "opt-dynamic"], n_procs=8)
        for metrics in out.values():
            assert set(metrics) == {
                "flops",
                "ttm_volume",
                "regrid_volume",
                "comm_volume",
                "tree_compute_s",
                "tree_comm_s",
                "svd_s",
                "total_s",
            }
            assert all(math.isfinite(v) for v in metrics.values())

    def test_opt_has_min_flops(self, meta):
        out = evaluate_algorithms(meta, list(ALGORITHMS), n_procs=8)
        opt = out["opt-dynamic"]["flops"]
        for name, metrics in out.items():
            assert metrics["flops"] >= opt

    def test_dynamic_volume_le_static_on_same_tree(self, meta):
        out = evaluate_algorithms(
            meta, ["opt-static", "opt-dynamic"], n_procs=8
        )
        assert out["opt-dynamic"]["comm_volume"] <= out["opt-static"]["comm_volume"]


class TestSweepAndNormalize:
    def test_sweep_record_shape(self):
        metas = paper_subsample(5, count=4)
        recs = sweep(metas, ["chain-k", "opt-dynamic"], n_procs=8)
        assert len(recs) == 4
        for rec in recs:
            assert set(rec["algs"]) == {"chain-k", "opt-dynamic"}

    def test_normalize_baseline_is_one(self):
        metas = paper_subsample(5, count=4)
        recs = sweep(metas, ["chain-k", "opt-dynamic"], n_procs=8)
        norm = normalize_against(recs, "total_s", "opt-dynamic")
        assert all(v == 1.0 for v in norm["opt-dynamic"])
        assert len(norm["chain-k"]) == 4

    def test_normalize_zero_baseline(self):
        recs = [
            {"meta": None, "algs": {"a": {"x": 0.0}, "b": {"x": 0.0}}},
            {"meta": None, "algs": {"a": {"x": 0.0}, "b": {"x": 2.0}}},
        ]
        norm = normalize_against(recs, "x", "a")
        assert norm["b"] == [1.0, float("inf")]


class TestRunBackends:
    def test_executed_comparison_across_backends(self):
        t = low_rank_tensor((12, 10, 8), (4, 3, 3), noise=0.1, seed=0)
        out = run_backends(
            t, (4, 3, 3),
            backends=("sequential", "threaded", "procpool"),
            n_procs=2, max_iters=1,
        )
        assert set(out) == {"sequential", "threaded", "procpool"}
        for name, metrics in out.items():
            assert "unavailable" not in metrics, name
            assert metrics["seconds"] > 0
            assert metrics["flops"] > 0
            assert metrics["comm_volume"] == 0  # all shared-memory here
            # the conformance bound, measured end to end
            assert metrics["max_core_diff"] < 1e-10
        assert out["sequential"]["max_core_diff"] == 0.0

    def test_reference_always_included(self):
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=1)
        out = run_backends(t, (3, 3, 2), backends=("threaded",), n_procs=2,
                           max_iters=1)
        assert set(out) == {"sequential", "threaded"}

    def test_unavailable_backend_reported_not_dropped(self, monkeypatch):
        import repro.bench.runner as runner_mod
        from repro.backends import BackendUnavailableError

        real = runner_mod.get_backend

        def flaky(spec, **kwargs):
            if spec == "procpool":
                raise BackendUnavailableError("no shm here", backend=spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(runner_mod, "get_backend", flaky)
        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=1)
        # A backend the host cannot provide must surface as a record,
        # not an exception or a silent drop.
        out = run_backends(t, (3, 3, 2), backends=("procpool",), max_iters=1)
        assert "unavailable" in out["procpool"]
        assert "no shm" in out["procpool"]["unavailable"]
        assert "max_core_diff" in out["sequential"]

    def test_default_procs_shared_and_plannable(self):
        # All-small core dims: the machine default (cores - 1) may be
        # unplannable; run_backends must clamp to a feasible shared P.
        t = low_rank_tensor((10, 9, 8), (5, 4, 3), noise=0.1, seed=2)
        out = run_backends(t, (5, 4, 3), backends=("sequential", "threaded"))
        assert out["threaded"]["max_core_diff"] < 1e-10


class TestRunBatch:
    def test_batched_throughput_tracked_per_backend(self):
        tensors = [
            low_rank_tensor((12, 10, 8), (4, 3, 3), noise=0.1, seed=s)
            for s in range(4)
        ]
        out = run_batch(
            tensors, (4, 3, 3),
            backends=("sequential", "threaded"),
            n_procs=2, max_iters=1,
        )
        assert set(out) == {"sequential", "threaded"}
        for name, metrics in out.items():
            assert "unavailable" not in metrics, name
            assert metrics["n_items"] == 4.0
            assert metrics["items_per_second"] > 0
            assert metrics["seconds"] > 0
            # one plan for the whole same-shape batch
            assert metrics["plans_compiled"] == 1.0
            assert metrics["cache_hits"] == 3.0
            # per-item conformance bound across the whole batch
            assert metrics["max_core_diff"] < 1e-10
        assert out["sequential"]["max_core_diff"] == 0.0

    def test_unavailable_backend_reported(self, monkeypatch):
        import repro.bench.runner as runner_mod
        from repro.backends import BackendUnavailableError

        real = runner_mod.get_backend

        def flaky(spec, **kwargs):
            if spec == "procpool":
                raise BackendUnavailableError("no shm here", backend=spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(runner_mod, "get_backend", flaky)
        tensors = [
            low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.1, seed=s)
            for s in range(2)
        ]
        out = run_batch(tensors, (3, 3, 2), backends=("procpool",),
                        max_iters=1)
        assert "unavailable" in out["procpool"]
        assert out["sequential"]["n_items"] == 2.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_batch([], (2, 2, 2))

    def test_heterogeneous_shapes_share_feasible_procs(self):
        tensors = [
            low_rank_tensor((10, 9, 8), (5, 4, 3), noise=0.1, seed=0),
            low_rank_tensor((12, 9, 8), (5, 4, 3), noise=0.1, seed=1),
        ]
        out = run_batch(tensors, (5, 4, 3), backends=("sequential", "threaded"))
        assert out["threaded"]["max_core_diff"] < 1e-10
        assert out["threaded"]["plans_compiled"] == 2.0


class TestRunServe:
    def test_serve_vs_serial_agree_and_report(self):
        tensors = [
            low_rank_tensor((12, 10, 8), (3, 3, 2), seed=i, noise=0.05)
            for i in range(4)
        ]
        out = run_serve(
            tensors, (3, 3, 2), workers=2, backend="sequential",
            max_iters=2,
        )
        serial, serve = out["serial"], out["serve"]
        assert serial["n_items"] == serve["n_items"] == 4.0
        assert serial["items_per_second"] >= 0.0
        assert serve["items_per_second"] >= 0.0
        assert serve["workers"] == 2.0
        assert serve["speedup"] > 0.0
        # Same plans, same arithmetic: the serve arm must agree exactly
        # with the warm-session serial stream.
        assert serve["max_core_diff"] < 1e-10
        # 4 equal-keyed requests on 2 workers: at least the repeats on
        # the sticky owner hit.
        assert serve["affinity_hit_rate"] > 0.0

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_serve([], (2, 2, 2))
