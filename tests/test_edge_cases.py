"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.core.grids import svd_regrid_target
from repro.core.meta import TensorMeta
from repro.core.planner import Planner
from repro.dist.dtensor import DistTensor
from repro.hooi.hooi import hooi_sequential, hooi_step_distributed
from repro.hooi.model import predict
from repro.hooi.sthosvd import sthosvd
from repro.mpi.comm import SimCluster
from repro.tensor.random import low_rank_tensor


class TestModelAllgatherFallback:
    """A meta where no q_mode = 1 grid exists at a leaf: the model and the
    engine must both take (and agree on) the allgather path."""

    def setup_method(self):
        # leaf for mode 0 sees Z of lengths (16, 2): with P = 4, q0 = 1
        # requires q1 = 4 > 2 -> impossible -> allgather fallback.
        self.meta = TensorMeta(dims=(16, 2), core=(8, 2))

    def test_target_is_none(self):
        assert svd_regrid_target((2, 2), (16, 2), 0) is None

    def test_model_and_engine_agree(self):
        plan = Planner(4, tree="optimal", grid="static").plan(self.meta)
        t = low_rank_tensor(self.meta.dims, self.meta.core, noise=0.1, seed=0)
        init = sthosvd(t, self.meta.core)
        cluster = SimCluster(4)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        hooi_step_distributed(dt, init.factors, plan, tag="h")
        rep = predict(plan)
        assert rep.svd.volume > 0
        assert cluster.stats.volume(tag_prefix="h:svd") <= rep.svd.volume


class TestDegenerateTensors:
    def test_rank_one_tensor_exact(self):
        # outer product of three vectors: core (1,1,1) is exact
        a, b, c = (np.linspace(1, 2, n) for n in (6, 5, 4))
        t = np.einsum("i,j,k->ijk", a, b, c)
        dec = sthosvd(t, (1, 1, 1))
        assert dec.error_vs(t) < 1e-12
        # core (1,1,1) admits only the trivial grid: P must be 1
        res = hooi_sequential(t, dec, n_procs=1, max_iters=2)
        assert res.final_error < 1e-6  # norm-identity cancellation floor
        assert res.decomposition.error_vs(t) < 1e-12

    def test_no_valid_grid_is_a_clear_error(self):
        a, b, c = (np.linspace(1, 2, n) for n in (6, 5, 4))
        t = np.einsum("i,j,k->ijk", a, b, c)
        dec = sthosvd(t, (1, 1, 1))
        with pytest.raises(ValueError, match="no valid grid"):
            hooi_sequential(t, dec, n_procs=2, max_iters=1)

    def test_tensor_with_zero_slices(self):
        t = low_rank_tensor((8, 7, 6), (2, 2, 2), noise=0.0, seed=3)
        t[0, :, :] = 0.0
        dec = sthosvd(t, (3, 3, 3))
        res = hooi_sequential(t, dec, n_procs=2, max_iters=3, tol=0.0)
        for a, b in zip(res.errors, res.errors[1:]):
            assert b <= a + 1e-10

    def test_all_zero_tensor(self):
        t = np.zeros((6, 5, 4))
        dec = sthosvd(t, (2, 2, 2))
        assert dec.error_vs(t) == 0.0

    def test_core_equal_dims_lossless_hooi(self):
        t = low_rank_tensor((5, 4, 3), (5, 4, 3), noise=0.0, seed=4)
        dec = sthosvd(t, (5, 4, 3))
        res = hooi_sequential(t, dec, n_procs=1, max_iters=2)
        # the norm-identity error sqrt(||T||^2 - ||G||^2) cancels
        # catastrophically at exactly zero error; ~sqrt(eps) is the floor
        assert res.final_error < 1e-6
        assert res.decomposition.error_vs(t) < 1e-10  # explicit is exact


class TestClusterMismatches:
    def test_plan_and_cluster_size_must_match(self):
        meta = TensorMeta(dims=(8, 6, 4), core=(4, 3, 2))
        plan = Planner(8).plan(meta)
        cluster = SimCluster(4)  # wrong size
        t = low_rank_tensor(meta.dims, meta.core, noise=0.1, seed=5)
        with pytest.raises(ValueError):
            DistTensor.from_global(cluster, t, plan.initial_grid)

    def test_single_rank_cluster_end_to_end(self):
        meta = TensorMeta(dims=(8, 6, 4), core=(4, 3, 2))
        plan = Planner(1).plan(meta)
        cluster = SimCluster(1)
        t = low_rank_tensor(meta.dims, meta.core, noise=0.1, seed=6)
        init = sthosvd(t, meta.core)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        dec, _ = hooi_step_distributed(dt, init.factors, plan)
        assert cluster.stats.volume() == 0  # P = 1: zero communication
        assert dec.error_vs(t) <= init.error_vs(t) + 1e-12


class TestUpdateVariantsComparison:
    def test_gauss_seidel_and_jacobi_both_improve(self):
        from repro.hooi.hooi import hooi_reference_step

        t = low_rank_tensor((10, 9, 8), (3, 3, 2), noise=0.3, seed=7)
        init = sthosvd(t, (3, 3, 2))
        base = init.error_vs(t)
        jac = hooi_reference_step(t, init.factors, (3, 3, 2), update="jacobi")
        gs = hooi_reference_step(
            t, init.factors, (3, 3, 2), update="gauss-seidel"
        )
        assert jac.error_vs(t) <= base + 1e-12
        assert gs.error_vs(t) <= base + 1e-12
        # the tree-compatible Jacobi variant matches GS to high accuracy
        # near a fixed point (STHOSVD init is already close)
        assert abs(jac.error_vs(t) - gs.error_vs(t)) < 0.05
