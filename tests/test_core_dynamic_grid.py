"""Tests for the optimal dynamic gridding DP (paper section 4.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_grid import (
    GridScheme,
    brute_force_dynamic_volume,
    optimal_dynamic_scheme,
    optimal_path_scheme,
    static_scheme,
)
from repro.core.meta import TensorMeta
from repro.core.opt_tree import optimal_tree
from repro.core.ordering import optimal_chain_ordering
from repro.core.static_grid import optimal_static_grid
from repro.core.trees import balanced_tree, chain_tree
from repro.core.volume import scheme_volume


def random_meta(seed: int, n: int = 3) -> TensorMeta:
    r = random.Random(seed)
    dims = tuple(r.choice([6, 8, 12]) for _ in range(n))
    core = tuple(max(2, d // r.choice([2, 3])) for d in dims)
    return TensorMeta(dims=dims, core=core)


class TestOptimality:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10)
    def test_matches_brute_force_tiny(self, seed):
        m = random_meta(seed, n=3)
        t = optimal_tree(m)
        scheme = optimal_dynamic_scheme(t, m, 4)
        assert scheme.total_volume == brute_force_dynamic_volume(t, m, 4)

    def test_matches_brute_force_chain_tree(self):
        m = TensorMeta(dims=(8, 6, 4), core=(4, 3, 2))
        t = chain_tree(3)
        scheme = optimal_dynamic_scheme(t, m, 4)
        assert scheme.total_volume == brute_force_dynamic_volume(t, m, 4)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25)
    def test_never_worse_than_optimal_static(self, seed):
        # static schemes are a subset of dynamic schemes
        m = random_meta(seed, n=4)
        t = optimal_tree(m)
        _, static_vol = optimal_static_grid(t, m, 8)
        dyn = optimal_dynamic_scheme(t, m, 8)
        assert dyn.total_volume <= static_vol

    def test_reported_volume_matches_recount(self):
        m = random_meta(5, n=4)
        t = balanced_tree(4)
        s = optimal_dynamic_scheme(t, m, 8)
        ttm, regrid = scheme_volume(t, m, s.assignment)
        assert (ttm, regrid) == (s.ttm_volume, s.regrid_volume)

    def test_paper_figure9_flavour(self):
        # a mode with large K attracts all ranks; the initial grid should be
        # concentrated to make early TTMs free, with regrids downstream.
        m = TensorMeta(dims=(64, 64, 64, 64), core=(8, 8, 8, 64))
        t = chain_tree(4)
        s = optimal_dynamic_scheme(t, m, 64)
        ttm, regrid = s.ttm_volume, s.regrid_volume
        _, static_vol = optimal_static_grid(t, m, 64)
        assert ttm + regrid < static_vol


class TestRegridCostScale:
    def test_zero_scale_ignores_regrid_price(self):
        m = random_meta(1, n=3)
        t = optimal_tree(m)
        free = optimal_dynamic_scheme(t, m, 4, regrid_cost_scale=0.0)
        # with free regrids, every TTM can run on its best grid: TTM volume
        # must be minimal over all schemes
        normal = optimal_dynamic_scheme(t, m, 4)
        assert free.ttm_volume <= normal.ttm_volume

    def test_huge_scale_means_static(self):
        m = random_meta(2, n=3)
        t = optimal_tree(m)
        s = optimal_dynamic_scheme(t, m, 4, regrid_cost_scale=1e12)
        assert s.regrid_volume == 0
        _, static_vol = optimal_static_grid(t, m, 4)
        assert s.ttm_volume == static_vol

    def test_negative_scale_rejected(self):
        m = random_meta(3)
        with pytest.raises(ValueError):
            optimal_dynamic_scheme(optimal_tree(m), m, 4, regrid_cost_scale=-1)


class TestStaticScheme:
    def test_wraps_grid(self):
        m = random_meta(4, n=3)
        t = chain_tree(3)
        grid, vol = optimal_static_grid(t, m, 4)
        s = static_scheme(t, m, grid)
        assert s.ttm_volume == vol and s.regrid_volume == 0
        assert s.regrid_nodes == ()
        assert s.grid_of(t.root.uid) == grid


class TestGridSchemeSerialization:
    def test_roundtrip(self):
        m = random_meta(6, n=3)
        t = optimal_tree(m)
        s = optimal_dynamic_scheme(t, m, 4)
        s2 = GridScheme.from_dict(s.to_dict())
        assert s2.assignment == s.assignment
        assert s2.total_volume == s.total_volume
        assert s2.regrid_nodes == s.regrid_nodes


class TestPathScheme:
    def test_path_dp_never_worse_than_static_chain(self):
        for seed in range(20):
            m = random_meta(seed, n=4)
            order = optimal_chain_ordering(m)
            t = optimal_tree(m)
            s = optimal_dynamic_scheme(t, m, 8)
            init = s.grid_of(t.root.uid)
            grids, ttm, regrid = optimal_path_scheme(m, order, init, 8)
            # static alternative: stay on init
            premult = 0
            static_cost = 0
            for mode in order:
                premult |= 1 << mode
                static_cost += (init[mode] - 1) * m.card_after(premult)
            assert ttm + regrid <= static_cost
            assert len(grids) == m.ndim

    def test_path_dp_brute_force_tiny(self):
        from itertools import product

        m = TensorMeta(dims=(6, 6, 6), core=(3, 2, 2))
        order = [0, 1, 2]
        from repro.core.grids import valid_grids

        grids = valid_grids(4, m)
        init = grids[0]
        _, ttm, regrid = optimal_path_scheme(m, order, init, 4)
        # brute force over all grid assignments along the path
        best = None
        cards = [m.cardinality]
        premult = 0
        for mode in order:
            premult |= 1 << mode
            cards.append(m.card_after(premult))
        for combo in product(grids, repeat=3):
            cost = 0
            prev = init
            for i, mode in enumerate(order):
                if combo[i] != prev:
                    cost += cards[i]
                cost += (combo[i][mode] - 1) * cards[i + 1]
                prev = combo[i]
            best = cost if best is None else min(best, cost)
        assert ttm + regrid == best

    def test_invalid_initial_grid_rejected(self):
        m = TensorMeta(dims=(6, 6), core=(3, 2))
        with pytest.raises(ValueError, match="valid"):
            optimal_path_scheme(m, [0, 1], (6, 1), 6)

    def test_bad_order_rejected(self):
        m = TensorMeta(dims=(6, 6), core=(3, 2))
        with pytest.raises(ValueError, match="permutation"):
            optimal_path_scheme(m, [0, 0], (3, 2), 6)
