"""Tests for the benchmark tensor suite."""

import pytest

from repro.bench.suite import (
    CARDINALITY_CAP,
    PAPER_COUNTS,
    REAL_TENSORS,
    benchmark_metas,
    paper_subsample,
    real_tensor_meta,
)


class TestRealTensors:
    def test_table2_metadata_pinned(self):
        # exact values from Table 2 of the paper
        assert REAL_TENSORS["HCCI"].dims == (672, 672, 627, 16)
        assert REAL_TENSORS["HCCI"].core == (279, 279, 153, 14)
        assert REAL_TENSORS["TJLR"].dims == (460, 700, 360, 16, 4)
        assert REAL_TENSORS["TJLR"].core == (306, 232, 239, 16, 4)
        assert REAL_TENSORS["SP"].dims == (500, 500, 500, 11, 10)
        assert REAL_TENSORS["SP"].core == (81, 129, 127, 7, 6)

    def test_lookup_case_insensitive(self):
        assert real_tensor_meta("sp") is REAL_TENSORS["SP"]
        with pytest.raises(KeyError):
            real_tensor_meta("nope")


class TestEnumeration:
    def test_counts_are_pinned(self):
        # canonical multiset enumeration sizes (documented in DESIGN.md)
        assert len(benchmark_metas(5)) == 10312
        assert len(benchmark_metas(6)) == 7710

    def test_cap_enforced(self):
        for m in benchmark_metas(5)[:500]:
            assert m.cardinality <= CARDINALITY_CAP

    def test_parameters_from_recipe(self):
        lengths = {20, 50, 100, 400}
        for m in benchmark_metas(5)[:500]:
            assert set(m.dims) <= lengths
            for ell, k in zip(m.dims, m.core):
                assert ell / k in (1.25, 2.0, 5.0, 10.0)

    def test_ascending_canonical_orientation(self):
        for m in benchmark_metas(5)[:200]:
            pairs = list(zip(m.dims, m.core))
            assert pairs == sorted(pairs)

    def test_deterministic(self):
        a = benchmark_metas(6)
        b = benchmark_metas(6)
        assert a == b

    def test_no_duplicates(self):
        metas = benchmark_metas(5)
        assert len(set(metas)) == len(metas)

    def test_smaller_cap_shrinks(self):
        assert len(benchmark_metas(5, cardinality_cap=10**8)) < 10312


class TestPaperSubsample:
    def test_paper_sizes(self):
        assert len(paper_subsample(5)) == PAPER_COUNTS[5] == 1134
        assert len(paper_subsample(6)) == PAPER_COUNTS[6] == 642

    def test_subsample_is_subset_and_sorted_spread(self):
        full = benchmark_metas(5)
        sub = paper_subsample(5)
        full_set = set(full)
        assert all(m in full_set for m in sub)
        assert sub[0] == full[0] and sub[-1] == full[-1]

    def test_deterministic(self):
        assert paper_subsample(6) == paper_subsample(6)

    def test_custom_count(self):
        assert len(paper_subsample(5, count=10)) == 10
        with pytest.raises(ValueError):
            paper_subsample(5, count=100_000)

    def test_unknown_ndim_needs_count(self):
        with pytest.raises(ValueError, match="count"):
            paper_subsample(4)
