"""End-to-end integration tests crossing every module boundary.

These are the repo's "does the whole system behave like the paper's" tests:
plan -> distribute -> HOOI -> error drops; engine statistics match planner
predictions; the public API of ``repro`` stays importable and coherent.
"""

import numpy as np
import pytest

import repro
from repro import (
    DistTensor,
    MachineModel,
    Planner,
    SimCluster,
    TensorMeta,
    hooi_distributed,
    low_rank_tensor,
    predict,
    separable_field_tensor,
    sthosvd,
)
from repro.bench import ALGORITHMS, make_planner
from repro.hooi.hooi import hooi_reference_step


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestFullPipeline:
    def test_compress_smooth_field(self):
        # the paper's motivating use case: compress a smooth simulation field
        t = separable_field_tensor((24, 20, 18), n_bumps=5, noise=1e-4, seed=0)
        meta = TensorMeta(dims=t.shape, core=(6, 6, 6))
        init = sthosvd(t, meta.core)
        cluster = SimCluster(8)
        plan = Planner(8, tree="optimal", grid="dynamic").plan(meta)
        res = hooi_distributed(cluster, t, init, plan=plan, max_iters=5)
        assert res.final_error < 0.01
        assert res.decomposition.compression_ratio > 10

    def test_hooi_improves_on_bad_init(self):
        # random orthonormal init: HOOI must improve it a lot
        from repro.tensor.random import random_orthonormal

        dims, core = (14, 12, 10), (4, 3, 3)
        t = low_rank_tensor(dims, core, noise=0.05, seed=1)
        factors = [
            random_orthonormal(ell, k, seed=i)
            for i, (ell, k) in enumerate(zip(dims, core))
        ]
        from repro.hooi.decomposition import TuckerDecomposition
        from repro.tensor.ttm import ttm_chain

        core0 = ttm_chain(t, factors, [0, 1, 2], transpose=True)
        init = TuckerDecomposition(core=core0, factors=factors)
        cluster = SimCluster(4)
        res = hooi_distributed(cluster, t, init, max_iters=10)
        assert res.final_error < 0.5 * init.error_vs(t)

    @pytest.mark.parametrize("alg", sorted(ALGORITHMS))
    def test_every_algorithm_executes_and_agrees(self, alg):
        # all five algorithm configs must produce the same new factors
        dims, core = (10, 9, 8, 7), (3, 3, 2, 2)
        t = low_rank_tensor(dims, core, noise=0.1, seed=2)
        meta = TensorMeta(dims=dims, core=core)
        init = sthosvd(t, core)
        ref = hooi_reference_step(t, init.factors, core)
        plan = make_planner(alg, 8).plan(meta)
        cluster = SimCluster(8)
        dt = DistTensor.from_global(cluster, t, plan.initial_grid)
        from repro.hooi.hooi import hooi_step_distributed

        dec, _ = hooi_step_distributed(dt, init.factors, plan)
        for a, b in zip(dec.factors, ref.factors):
            np.testing.assert_allclose(a, b, atol=1e-7)
        np.testing.assert_allclose(dec.core, ref.core, atol=1e-7)


class TestPlannerEnginePredictions:
    def test_predicted_volume_is_engine_upper_bound(self):
        dims, core = (12, 12, 9, 8), (4, 6, 3, 4)
        meta = TensorMeta(dims=dims, core=core)
        t = low_rank_tensor(dims, core, noise=0.2, seed=3)
        init = sthosvd(t, core)
        for alg in sorted(ALGORITHMS):
            plan = make_planner(alg, 8).plan(meta)
            cluster = SimCluster(8)
            dt = DistTensor.from_global(cluster, t, plan.initial_grid)
            from repro.hooi.hooi import hooi_step_distributed

            hooi_step_distributed(dt, init.factors, plan, tag="h")
            rep = predict(plan)
            engine_total = cluster.stats.volume()
            model_total = (
                rep.ttm.volume + rep.regrid.volume + rep.svd.volume + rep.core.volume
            )
            assert engine_total <= model_total
            # and the reduce-scatter part is exact
            assert (
                cluster.stats.volume(op="reduce_scatter", tag_prefix="h:ttm")
                == plan.ttm_volume
            )

    def test_iterations_have_identical_metrics(self):
        # "any two HOOI iterations incur the same load and volume" (sec 6.2)
        dims, core = (10, 10, 8), (3, 4, 2)
        meta = TensorMeta(dims=dims, core=core)
        t = low_rank_tensor(dims, core, noise=0.3, seed=4)
        init = sthosvd(t, core)
        plan = Planner(4, tree="optimal", grid="dynamic").plan(meta)
        cluster = SimCluster(4)
        hooi_distributed(cluster, t, init, plan=plan, max_iters=3, tol=0.0)
        vols = [
            cluster.stats.volume(tag_prefix=f"hooi:it{i}") for i in range(3)
        ]
        assert vols[0] == vols[1] == vols[2] > 0


class TestMachineModelEffects:
    def test_alltoall_advantage_prefers_dynamic_in_time(self):
        meta = TensorMeta(
            dims=(50, 20, 100, 20, 50), core=(10, 16, 20, 2, 25)
        )
        static = make_planner("opt-static", 32).plan(meta)
        dynamic = make_planner("opt-dynamic", 32).plan(meta)
        machine = MachineModel.bgq_like()
        t_static = predict(static, machine).tree_comm_seconds
        t_dynamic = predict(dynamic, machine).tree_comm_seconds
        assert t_dynamic <= t_static
