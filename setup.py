"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` via pyproject build isolation) cannot build
an editable wheel. This shim lets ``pip install -e . --no-build-isolation``
fall back to the classic ``setup.py develop`` path. All metadata lives in
pyproject.toml; keep this file trivial.
"""

from setuptools import setup

setup()
